//! The `couplink-node` child process: one coupled *program* as its own OS
//! process, connected to its peers over sockets.
//!
//! Lifecycle (driven entirely by the parent orchestrator, see
//! [`super::bootstrap`]):
//!
//! 1. dial the parent, send `HELLO{version, token, prog}`;
//! 2. receive the `PLAN`, rebuild the validated [`Topology`] from the
//!    embedded configuration text (all processes derive the topology
//!    through the same code path, so shapes and connection ids can never
//!    disagree);
//! 3. bind a mesh listener, report it (`LISTENING`), receive the `PEERS`
//!    table, and form the full mesh (node *i* dials every *j < i* and
//!    accepts from every *j > i* — each pair shares exactly one socket);
//! 4. build a *partial* fabric session hosting only this program, with a
//!    [`RemoteLinks`] implementation that serializes foreign-bound traffic
//!    onto the mesh; send `READY`, wait for `GO`;
//! 5. run the application threads (exports with a deterministic cell
//!    fill, imports with optional value verification);
//! 6. send `APP_DONE` but **keep serving fabric traffic** — peers may
//!    still need this node's reps and stores for their own imports;
//! 7. on `DRAIN`, run the staged session shutdown (pump → relay → reps →
//!    agents → importers), send the `REPORT`, exit.
//!
//! A mesh EOF *before* this node finished its own application work means a
//! peer died: the session is failed fast (blocked `import`/`export` calls
//! surface [`ThreadedError::ProcessCrash`] instead of hanging). A mesh
//! EOF *after* `APP_DONE` is the normal consequence of a peer draining
//! first and is ignored — that asymmetry is what lets the coordinated
//! drain tolerate peers closing their sockets in any order.

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use couplink_layout::{LocalArray, Rect, SharedArray};
use couplink_metrics::EngineMetrics;
use couplink_proto::wire::{self as wire, Frame};
use couplink_proto::{ConnectionId, CtrlMsg, Rank, RequestId};
use couplink_time::ts;
use parking_lot::Mutex;

use crate::engine::{Endpoint, WireMeta};
use crate::threaded::fabric::{Net, RemoteLinks};
use crate::threaded::{ExecutorOptions, FabricOptions, SessionSet};

use super::codec::{self, NodeFault, NodeReport};
use super::link::{Addr, Conn, FrameReader, LinkWriter, Listener, SocketBackend};

/// How long the child waits on any single bootstrap step before giving up.
const BOOT_TIMEOUT: Duration = Duration::from_secs(120);
/// Absolute lifetime backstop: if the parent never collects us, die
/// instead of leaking a process into the test harness.
const WATCHDOG: Duration = Duration::from_secs(600);

/// Parsed command line of the `couplink-node` binary.
#[derive(Debug)]
pub struct NodeArgs {
    /// Parent bootstrap address (`uds:...` or `tcp:...`).
    pub connect: String,
    /// This node's program index.
    pub prog: usize,
    /// Shared session token, echoed in every handshake.
    pub token: String,
    /// Program index to *claim* in the hello, when different from `prog`
    /// — only used by the bootstrap-rejection tests.
    pub claim: Option<usize>,
}

/// The deterministic cell fill exporters write and importers verify:
/// recoverable from the matched timestamp alone, and distinct per cell.
fn cell_value(t: f64, row: usize, col: usize, grid_cols: usize) -> f64 {
    t * 1e6 + (row * grid_cols + col) as f64
}

fn ep_prog(ep: Endpoint) -> usize {
    let (Endpoint::Rep { prog } | Endpoint::Proc { prog, .. }) = ep;
    prog
}

/// [`RemoteLinks`] over the socket mesh: serializes each foreign-bound
/// message into a frame and queues it on the destination program's writer.
/// Pieces are serialized straight out of the shared store (no extra copy
/// of the payload on the send side beyond the wire buffer itself).
struct SocketLinks {
    /// Writer per program (self and unconnected slots are `None`).
    writers: Vec<Option<LinkWriter>>,
    /// Importing program of each connection, for piece routing.
    conn_importer: Vec<usize>,
    /// Set once the session exists; frames sent before that are counted
    /// nowhere (none are — traffic starts after `GO`).
    metrics: OnceLock<Arc<EngineMetrics>>,
}

impl SocketLinks {
    fn send(&self, prog: usize, frame: Vec<u8>) {
        if let Some(m) = self.metrics.get() {
            m.net_frames.inc();
            m.net_bytes.add(frame.len() as u64);
        }
        if let Some(w) = self.writers.get(prog).and_then(Option::as_ref) {
            w.send(frame);
        }
    }
}

impl RemoteLinks for SocketLinks {
    fn send_ctrl(&self, to: Endpoint, meta: Option<WireMeta>, msg: CtrlMsg) {
        self.send(ep_prog(to), codec::encode_ctrl_env(to, meta.as_ref(), &msg));
    }

    fn send_ack(&self, sender: Endpoint, acker: Endpoint, seq: u64) {
        self.send(ep_prog(sender), codec::encode_ack_env(sender, acker, seq));
    }

    fn send_piece(
        &self,
        conn: ConnectionId,
        dst: usize,
        req: RequestId,
        rect: Rect,
        payload: &SharedArray,
    ) {
        let frame = wire::encode_payload(
            conn,
            Rank(dst as u32),
            req,
            codec::wire_rect(rect),
            codec::wire_rect(payload.owned()),
            payload.as_slice(),
        );
        self.send(self.conn_importer[conn.0 as usize], frame);
    }
}

/// Injects one inbound mesh frame into the local session. Returns a fatal
/// description when the frame is structurally wrong for this layer.
fn dispatch(frame: &Frame, net: &Net, drop_answers: Option<u32>) -> Result<(), String> {
    match frame.kind {
        codec::KIND_CTRL => {
            let (to, meta, msg) =
                codec::decode_ctrl_env(&frame.body).map_err(|e| format!("ctrl envelope: {e}"))?;
            if let (Some(dropped), CtrlMsg::Answer { conn, .. }) = (drop_answers, &msg) {
                if conn.0 == dropped {
                    // Injected codec bug: the collective answer vanishes
                    // between socket and fabric. The liveness oracle must
                    // notice the wedged imports.
                    return Ok(());
                }
            }
            net.deliver_remote_ctrl(to, meta, msg);
            Ok(())
        }
        codec::KIND_ACK => {
            let (sender, acker, seq) =
                codec::decode_ack_env(&frame.body).map_err(|e| format!("ack envelope: {e}"))?;
            net.apply_remote_ack(sender, acker, seq);
            Ok(())
        }
        wire::KIND_PAYLOAD => {
            let p = wire::decode_payload(&frame.body).map_err(|e| format!("payload: {e}"))?;
            let rect = codec::rect_from(p.rect);
            let payload = SharedArray::from_parts(codec::rect_from(p.owned), p.data)
                .ok_or("payload data disagrees with its owned rect")?;
            net.deliver_remote_piece(p.conn, p.dst.0 as usize, p.req, rect, payload);
            Ok(())
        }
        k => Err(format!("unexpected mesh frame kind {k}")),
    }
}

#[allow(clippy::too_many_arguments)]
fn mesh_reader_loop(
    mut reader: FrameReader,
    peer: usize,
    net: Arc<Net>,
    set: Arc<Mutex<SessionSet>>,
    sid: usize,
    metrics: Arc<EngineMetrics>,
    apps_done: Arc<AtomicBool>,
    stall: bool,
    drop_answers: Option<u32>,
) {
    if stall {
        // Injected malfunction: the socket stays open, inbound traffic is
        // never processed. Peers must hit their import timeout, not hang.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    let mut reject = || metrics.net_codec_rejects.inc();
    loop {
        match reader.next(&mut reject) {
            Ok(Some(frame)) => {
                if let Err(detail) = dispatch(&frame, &net, drop_answers) {
                    set.lock()
                        .fail_session(sid, format!("link to program {peer}: {detail}"));
                    return;
                }
            }
            Ok(None) => {
                if !apps_done.load(Ordering::Acquire) {
                    set.lock()
                        .fail_session(sid, format!("peer program {peer} disconnected"));
                }
                return;
            }
            Err(e) => {
                if !apps_done.load(Ordering::Acquire) {
                    set.lock()
                        .fail_session(sid, format!("link to program {peer} failed: {e}"));
                }
                return;
            }
        }
    }
}

fn read_expected(reader: &mut FrameReader, kind: u8, what: &str) -> Result<Frame, String> {
    let mut reject = || {};
    match reader.next(&mut reject) {
        Ok(Some(f)) if f.kind == kind => Ok(f),
        Ok(Some(f)) if f.kind == codec::KIND_FATAL => Err(format!(
            "parent/peer reported fatal: {}",
            codec::decode_fatal(&f.body).unwrap_or_else(|_| "<garbled>".into())
        )),
        Ok(Some(f)) => Err(format!("expected {what}, got frame kind {}", f.kind)),
        Ok(None) => Err(format!("connection closed while waiting for {what}")),
        Err(e) => Err(format!("reading {what}: {e}")),
    }
}

/// Runs the child process to completion; returns the process exit code.
pub fn node_main(args: NodeArgs) -> i32 {
    match run_node(&args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("couplink-node[{}]: {e}", args.prog);
            3
        }
    }
}

fn run_node(args: &NodeArgs) -> Result<(), String> {
    std::thread::Builder::new()
        .name("couplink-node-watchdog".into())
        .spawn(|| {
            std::thread::sleep(WATCHDOG);
            eprintln!("couplink-node: watchdog expired, aborting");
            std::process::exit(9);
        })
        .map_err(|e| format!("spawning watchdog: {e}"))?;

    let me = args.prog;
    let parent_addr = Addr::parse(&args.connect)?;
    let backend = match parent_addr {
        Addr::Uds(_) => SocketBackend::Uds,
        Addr::Tcp(_) => SocketBackend::Tcp,
    };
    let mut parent_wr = Conn::dial(&parent_addr).map_err(|e| format!("dialing parent: {e}"))?;
    parent_wr
        .set_read_timeout(Some(BOOT_TIMEOUT))
        .map_err(|e| format!("parent socket: {e}"))?;
    let mut parent_rd = FrameReader::new(
        parent_wr
            .try_clone()
            .map_err(|e| format!("cloning parent socket: {e}"))?,
    );

    let claim = args.claim.unwrap_or(me);
    parent_wr
        .write_all(&codec::encode_hello(codec::KIND_HELLO, &args.token, claim))
        .map_err(|e| format!("sending hello: {e}"))?;

    let plan_frame = read_expected(&mut parent_rd, codec::KIND_PLAN, "plan")?;
    let plan = codec::decode_plan(&plan_frame.body).map_err(|e| format!("plan: {e}"))?;
    let topo = plan.topology()?;
    let n = topo.programs.len();
    if me >= n {
        return Err(format!("program index {me} out of range ({n} programs)"));
    }

    // Mesh listener lives next to the parent's bootstrap socket (UDS) or
    // on another ephemeral loopback port (TCP).
    let mesh_dir = match &parent_addr {
        Addr::Uds(path) => path
            .parent()
            .ok_or("parent socket path has no directory")?
            .to_path_buf(),
        Addr::Tcp(_) => std::env::temp_dir(),
    };
    let listener = Listener::bind(backend, &mesh_dir, &format!("mesh-{me}"))
        .map_err(|e| format!("binding mesh listener: {e}"))?;
    let listen_addr = listener.addr().map_err(|e| format!("mesh address: {e}"))?;
    parent_wr
        .write_all(&codec::encode_listening(&listen_addr.to_string()))
        .map_err(|e| format!("sending listening: {e}"))?;

    let peers_frame = read_expected(&mut parent_rd, codec::KIND_PEERS, "peer table")?;
    let peers = codec::decode_peers(&peers_frame.body).map_err(|e| format!("peers: {e}"))?;
    if peers.len() != n {
        return Err(format!(
            "peer table has {} entries for {n} programs",
            peers.len()
        ));
    }

    // Form the mesh: dial the lower-indexed programs (their listeners are
    // guaranteed bound — the parent saw their LISTENING before
    // broadcasting PEERS), accept from the higher-indexed ones.
    let mut readers: Vec<Option<FrameReader>> = (0..n).map(|_| None).collect();
    let mut writers: Vec<Option<LinkWriter>> = (0..n).map(|_| None).collect();
    for (j, addr) in peers.iter().enumerate().take(me) {
        let mut c =
            Conn::dial(&Addr::parse(addr)?).map_err(|e| format!("dialing program {j}: {e}"))?;
        c.write_all(&codec::encode_hello(
            codec::KIND_MESH_HELLO,
            &args.token,
            me,
        ))
        .map_err(|e| format!("mesh hello to {j}: {e}"))?;
        writers[j] = Some(LinkWriter::spawn(
            c.try_clone().map_err(|e| format!("mesh clone: {e}"))?,
            format!("{me}-{j}"),
        ));
        readers[j] = Some(FrameReader::new(c));
    }
    for _ in me + 1..n {
        let c = listener.accept().map_err(|e| format!("mesh accept: {e}"))?;
        c.set_read_timeout(Some(BOOT_TIMEOUT))
            .map_err(|e| format!("mesh socket: {e}"))?;
        let mut r = FrameReader::new(c);
        let hello = read_expected(&mut r, codec::KIND_MESH_HELLO, "mesh hello")?;
        let (version, token, from) =
            codec::decode_hello(&hello.body).map_err(|e| format!("mesh hello: {e}"))?;
        if version != codec::RT_VERSION {
            return Err(format!("mesh peer speaks version {version}"));
        }
        if token != args.token {
            return Err("mesh peer presented a wrong token".into());
        }
        if from <= me || from >= n || readers[from].is_some() {
            return Err(format!("mesh peer claims invalid program {from}"));
        }
        r.conn()
            .set_read_timeout(None)
            .map_err(|e| format!("mesh socket: {e}"))?;
        writers[from] = Some(LinkWriter::spawn(
            r.conn()
                .try_clone()
                .map_err(|e| format!("mesh clone: {e}"))?,
            format!("{me}-{from}"),
        ));
        readers[from] = Some(r);
    }

    // Build the partial session: only this program's tasks exist locally;
    // everything foreign flows through SocketLinks.
    let links = Arc::new(SocketLinks {
        writers: std::mem::take(&mut writers),
        conn_importer: topo.conns.iter().map(|c| c.importer_prog).collect(),
        metrics: OnceLock::new(),
    });
    let opts = FabricOptions {
        buddy_help: plan.buddy_help,
        import_timeout: Duration::from_secs_f64(plan.import_timeout_s),
        buffer_capacity: None,
        traces: plan
            .traces
            .iter()
            .filter(|&&(p, _, _)| p == me)
            .map(|&(p, r, c)| (p, r, ConnectionId(c)))
            .collect(),
        chaos: plan.chaos,
        drop_buddy_help: false,
        hierarchical: plan.hierarchical,
    };
    let set = Arc::new(Mutex::new(SessionSet::new(&ExecutorOptions::default())));
    let sid = set
        .lock()
        .add_partial_session(topo.clone(), opts, me, links.clone());
    let metrics = set.lock().session_metrics(sid);
    let _ = links.metrics.set(Arc::clone(&metrics));
    let net = set.lock().session_net(sid);

    let apps_done = Arc::new(AtomicBool::new(false));
    let stall = matches!(plan.fault, Some(NodeFault::StallMeshReader { prog }) if prog == me);
    let drop_answers = match plan.fault {
        Some(NodeFault::DropAnswers { conn }) => Some(conn),
        _ => None,
    };
    for (peer, slot) in readers.iter_mut().enumerate() {
        let Some(reader) = slot.take() else { continue };
        let (net, set, metrics, apps_done) = (
            Arc::clone(&net),
            Arc::clone(&set),
            Arc::clone(&metrics),
            Arc::clone(&apps_done),
        );
        std::thread::Builder::new()
            .name(format!("couplink-net-rd-{me}-{peer}"))
            .spawn(move || {
                mesh_reader_loop(
                    reader,
                    peer,
                    net,
                    set,
                    sid,
                    metrics,
                    apps_done,
                    stall,
                    drop_answers,
                )
            })
            .map_err(|e| format!("spawning mesh reader: {e}"))?;
    }

    parent_wr
        .write_all(&codec::encode_bare(codec::KIND_READY))
        .map_err(|e| format!("sending ready: {e}"))?;
    read_expected(&mut parent_rd, codec::KIND_GO, "go")?;

    // --- application threads ---
    let grid_cols = plan.grid.1;
    let scale = plan.time_scale;
    let mut exp_threads = Vec::new();
    for spec in &plan.exports {
        let Some(prog) = topo.program_idx(&spec.program) else {
            return Err(format!("plan exports unknown program {}", spec.program));
        };
        if prog != me {
            continue;
        }
        for rank in 0..topo.programs[me].procs {
            let mut h = set.lock().take_export(sid, me, rank, spec.region);
            let owned = topo.programs[me].exports[spec.region].decomp.owned(rank);
            let (t0, dt, count) = (spec.t0, spec.dt, spec.count);
            let compute = spec.compute.get(rank).copied().unwrap_or(0.0);
            let abort_after = match plan.fault {
                Some(NodeFault::AbortAfterExports {
                    prog: p,
                    rank: r,
                    after,
                }) if p == me && r == rank => Some(after),
                _ => None,
            };
            exp_threads.push((
                rank,
                std::thread::spawn(move || -> Result<(), String> {
                    for k in 0..count {
                        if compute > 0.0 {
                            std::thread::sleep(Duration::from_secs_f64(compute * scale));
                        }
                        let t = t0 + k as f64 * dt;
                        let data = LocalArray::from_fn(owned, |row, col| {
                            cell_value(t, row, col, grid_cols)
                        });
                        h.export(ts(t), &data).map_err(|e| e.to_string())?;
                        if abort_after == Some(k + 1) {
                            // Injected malfunction: die mid-run with the
                            // sockets cut, exactly like a crashed peer.
                            std::process::exit(17);
                        }
                    }
                    Ok(())
                }),
            ));
        }
    }
    let mut imp_threads = Vec::new();
    for spec in &plan.imports {
        let Some(prog) = topo.program_idx(&spec.program) else {
            return Err(format!("plan imports unknown program {}", spec.program));
        };
        if prog != me {
            continue;
        }
        for rank in 0..topo.programs[me].procs {
            let mut h = set.lock().take_import(sid, me, rank, spec.region);
            let owned = topo.programs[me].imports[spec.region].decomp.owned(rank);
            let (t0, dt, count, compute, startup) =
                (spec.t0, spec.dt, spec.count, spec.compute, spec.startup);
            let verify = plan.verify_values;
            let region = spec.region;
            imp_threads.push((
                region,
                rank,
                std::thread::spawn(move || -> (Vec<Option<f64>>, Option<String>) {
                    std::thread::sleep(Duration::from_secs_f64(startup * scale));
                    let mut got = Vec::with_capacity(count);
                    let mut dest = LocalArray::zeros(owned);
                    for k in 0..count {
                        if compute > 0.0 {
                            std::thread::sleep(Duration::from_secs_f64(compute * scale));
                        }
                        match h.import(ts(t0 + k as f64 * dt), &mut dest) {
                            Err(e) => return (got, Some(e.to_string())),
                            Ok(None) => got.push(None),
                            Ok(Some(m)) => {
                                if verify {
                                    if let Some(err) =
                                        verify_cells(&dest, owned, m.value(), grid_cols)
                                    {
                                        return (got, Some(err));
                                    }
                                }
                                got.push(Some(m.value()));
                            }
                        }
                    }
                    (got, None)
                }),
            ));
        }
    }

    let mut export_errors = Vec::new();
    for (rank, t) in exp_threads {
        if let Err(e) = t.join().map_err(|_| "exporter thread panicked")? {
            export_errors.push((me, rank, e));
        }
    }
    let mut imports_done = Vec::new();
    let mut matches = Vec::new();
    for (region, rank, t) in imp_threads {
        let (got, err) = t.join().map_err(|_| "importer thread panicked")?;
        imports_done.push((me, rank, got.len() as u64, err));
        if rank == 0 {
            let conn = topo.programs[me].imports[region].conn;
            matches.push((conn.0, got));
        }
    }

    // From here on a peer EOF is expected (someone drains first) — the
    // fabric must keep serving peers that are still importing from us.
    apps_done.store(true, Ordering::Release);
    parent_wr
        .write_all(&codec::encode_bare(codec::KIND_APP_DONE))
        .map_err(|e| format!("sending app-done: {e}"))?;

    let drain_early = matches!(plan.fault, Some(NodeFault::DrainEarly { prog }) if prog == me);
    if !drain_early {
        read_expected(&mut parent_rd, codec::KIND_DRAIN, "drain")?;
    }

    let shutdown = set.lock().shutdown_session(sid);
    let (stats, traces, shutdown_error) = match shutdown {
        Ok(rep) => (
            rep.stats
                .into_iter()
                .enumerate()
                .map(|(c, per_rank)| (c as u32, per_rank))
                .collect(),
            rep.traces
                .into_iter()
                .map(|(p, r, c, t)| (p, r, c.0, t))
                .collect(),
            None,
        ),
        Err(e) => (Vec::new(), Vec::new(), Some(e.to_string())),
    };
    let report = NodeReport {
        prog: me,
        stats,
        traces,
        matches,
        imports_done,
        export_errors,
        shutdown_error,
        counters: metrics.snapshot().counters,
    };
    parent_wr
        .write_all(&codec::encode_report(&report))
        .map_err(|e| format!("sending report: {e}"))?;
    Ok(())
}

fn verify_cells(dest: &LocalArray, owned: Rect, m: f64, grid_cols: usize) -> Option<String> {
    for row in owned.row0..owned.row0 + owned.rows {
        for col in owned.col0..owned.col0 + owned.cols {
            let want = cell_value(m, row, col, grid_cols);
            let got = dest.get(row, col);
            if got != want {
                return Some(format!(
                    "data corruption at ({row},{col}) for D@{m}: got {got}, want {want}"
                ));
            }
        }
    }
    None
}
