//! The `couplink-node` child process: one coupled *program* as its own OS
//! process, connected to its peers over sockets.
//!
//! Lifecycle (driven entirely by the parent orchestrator, see
//! [`super::bootstrap`]):
//!
//! 1. dial the parent, send `HELLO{version, token, prog}`;
//! 2. receive the `PLAN`, rebuild the validated [`Topology`] from the
//!    embedded configuration text (all processes derive the topology
//!    through the same code path, so shapes and connection ids can never
//!    disagree);
//! 3. open the durable write-ahead journal when the plan names a
//!    `wal_dir`, build a *partial* fabric session hosting only this
//!    program (with a [`RemoteLinks`] implementation that serializes
//!    foreign-bound traffic onto the mesh), and — on a restart — replay
//!    the journal into the session *before any live frame can arrive*;
//! 4. bind a mesh listener, report it (`LISTENING`), receive the `PEERS`
//!    table, and form the full mesh (node *i* dials every *j < i* and
//!    accepts from every *j > i* — each pair shares exactly one socket);
//!    send `READY`, wait for `GO`;
//! 5. run the application threads (exports with a deterministic cell
//!    fill, imports with optional value verification); a restarted node
//!    resumes each export schedule after the journaled prefix;
//! 6. send `APP_DONE` but **keep serving fabric traffic** — peers may
//!    still need this node's reps and stores for their own imports;
//! 7. on `DRAIN`, run the staged session shutdown (pump → relay → reps →
//!    agents → importers), prune the journal (a cleanly drained session
//!    never needs replaying), send the `REPORT`, exit.
//!
//! # Link failure: fail fast, or reconnect
//!
//! Without durability in the plan, a mesh EOF *before* this node finished
//! its own application work means a peer died: the session is failed fast
//! (blocked `import`/`export` calls surface
//! [`ThreadedError::ProcessCrash`] instead of hanging). A mesh EOF *after*
//! `APP_DONE` is the normal consequence of a peer draining first and is
//! ignored — that asymmetry is what lets the coordinated drain tolerate
//! peers closing their sockets in any order.
//!
//! With a `wal_dir` (or an armed link-sever fault) the node instead
//! *reconnects*: the link's EOF-observer fully closes the socket (so both
//! sides agree it is dead), then the **higher-indexed** side re-dials with
//! backoff — mirroring the boot direction — while the lower-indexed side
//! re-accepts on its still-live mesh listener. The replacement writer
//! replays salvaged payload pieces (control and acks are *dropped*: the
//! reliability pump retransmits sequenced control, and a retransmitted
//! message re-triggers its ack), and `net_reconnects` is metered on each
//! side that re-established a link.
//!
//! # Durability discipline
//!
//! Every sequenced delivery is journaled *before* its ack can escape (the
//! fabric appends in `admit`), and [`SocketLinks::send`] fsyncs the
//! journal before any control or ack frame is queued on a writer — an
//! acked message must survive a crash, because the sender will never
//! retransmit it. Payload pieces are neither sequenced nor journaled:
//! they are regenerated deterministically by export replay and deduped by
//! the receiving importer.

use std::collections::HashMap;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use couplink_layout::{LocalArray, Rect, SharedArray};
use couplink_metrics::EngineMetrics;
use couplink_proto::wire::{self as wire, Frame};
use couplink_proto::{ConnectionId, CtrlMsg, Rank, RequestId};
use couplink_time::ts;
use parking_lot::Mutex;

use crate::engine::{Endpoint, WalRecord, WireMeta};
use crate::threaded::fabric::{ExportAccess, Net, RemoteLinks, WalHandle};
use crate::threaded::{ExecutorOptions, FabricOptions, SessionSet};

use super::codec::{self, NodeFault, NodeReport};
use super::link::{
    frame_kind, net_legacy, Addr, BufPool, Conn, FrameReader, LinkWriter, Listener, SocketBackend,
};
use super::wal::FileWal;

/// How long the child waits on any single bootstrap step before giving up.
const BOOT_TIMEOUT: Duration = Duration::from_secs(120);
/// Absolute lifetime backstop: if the parent never collects us, die
/// instead of leaking a process into the test harness.
const WATCHDOG: Duration = Duration::from_secs(600);

/// Re-dial schedule for a broken mesh link: 25 ms doubling to 1 s, ~9.6 s
/// total — comfortably inside the reliability pump's retransmit window, so
/// no sequenced message gives up while the link is down.
const RECONNECT_ATTEMPTS: u32 = 14;
const RECONNECT_FIRST: Duration = Duration::from_millis(25);
const RECONNECT_CAP: Duration = Duration::from_secs(1);

/// Parsed command line of the `couplink-node` binary.
#[derive(Debug)]
pub struct NodeArgs {
    /// Parent bootstrap address (`uds:...` or `tcp:...`).
    pub connect: String,
    /// This node's program index.
    pub prog: usize,
    /// Shared session token, echoed in every handshake.
    pub token: String,
    /// Program index to *claim* in the hello, when different from `prog`
    /// — only used by the bootstrap-rejection tests.
    pub claim: Option<usize>,
}

/// The deterministic cell fill exporters write and importers verify:
/// recoverable from the matched timestamp alone, and distinct per cell.
fn cell_value(t: f64, row: usize, col: usize, grid_cols: usize) -> f64 {
    t * 1e6 + (row * grid_cols + col) as f64
}

fn ep_prog(ep: Endpoint) -> usize {
    let (Endpoint::Rep { prog } | Endpoint::Proc { prog, .. }) = ep;
    prog
}

/// One peer's sending state: the live writer, or a stash of frames sent
/// while no writer is installed (boot, journal replay, or a reconnect in
/// flight) — flushed in order when one is.
#[derive(Default)]
struct SlotState {
    writer: Option<LinkWriter>,
    pending: Vec<Vec<u8>>,
}

/// [`RemoteLinks`] over the socket mesh: serializes each foreign-bound
/// message into a frame and queues it on the destination program's writer.
/// Pieces are serialized straight out of the shared store (no extra copy
/// of the payload on the send side beyond the wire buffer itself).
///
/// Writer slots are mutexed so a reconnect can swap a dead writer for a
/// fresh one underneath concurrent senders.
struct SocketLinks {
    /// Sending state per program (the self slot stays empty).
    slots: Vec<Mutex<SlotState>>,
    /// Importing program of each connection, for piece routing.
    conn_importer: Vec<usize>,
    /// Set once the session exists; frames sent before that are counted
    /// nowhere (none are — traffic starts after `GO` or journal replay).
    metrics: OnceLock<Arc<EngineMetrics>>,
    /// Frame buffers recycled between the payload encoder and the writer
    /// threads (`net_frames`/`net_bytes` are metered by the writers when
    /// bytes reach the socket, not here at enqueue).
    pool: Arc<BufPool>,
    /// Synced before any control or ack frame escapes: an acked delivery
    /// must already be durable, because the sender never retransmits an
    /// acked message.
    wal: Option<WalHandle>,
}

impl SocketLinks {
    fn new(
        n: usize,
        conn_importer: Vec<usize>,
        wal: Option<WalHandle>,
        pool: Arc<BufPool>,
    ) -> SocketLinks {
        SocketLinks {
            slots: (0..n).map(|_| Mutex::new(SlotState::default())).collect(),
            conn_importer,
            metrics: OnceLock::new(),
            pool,
            wal,
        }
    }

    fn send(&self, prog: usize, frame: Vec<u8>) {
        if let Some(wal) = &self.wal {
            if matches!(
                frame_kind(&frame),
                Some(codec::KIND_CTRL) | Some(codec::KIND_ACK)
            ) {
                wal.sync();
            }
        }
        let Some(slot) = self.slots.get(prog) else {
            return;
        };
        let mut st = slot.lock();
        match &st.writer {
            // A dead writer keeps the frame in its salvage; the swap
            // decides what to replay.
            Some(w) => {
                w.send(frame);
            }
            None => st.pending.push(frame),
        }
    }

    /// Installs a fresh writer for `prog`: retires any previous writer —
    /// replaying its salvaged payload pieces, dropping salvaged control
    /// and acks (the reliability pump retransmits sequenced control, and a
    /// retransmitted message re-triggers its ack; pieces are the only
    /// frames nobody retransmits) — then flushes the pending stash.
    fn install_writer(&self, prog: usize, writer: LinkWriter) {
        let mut st = self.slots[prog].lock();
        if let Some(old) = st.writer.take() {
            for f in old.retire() {
                if frame_kind(&f) == Some(wire::KIND_PAYLOAD) {
                    writer.send(f);
                }
            }
        }
        for f in st.pending.drain(..) {
            writer.send(f);
        }
        st.writer = Some(writer);
    }

    /// Flushes the data plane for the counter snapshot: waits (bounded)
    /// until every writer has drained its queue — so every frame that will
    /// ever be tx-metered has been — then half-closes each link so peers
    /// observe EOF after the last real frame. The bound covers the
    /// pathological case of a peer that stopped reading (stall fault): its
    /// link is cut mid-stream, which such a run cannot tell apart from the
    /// fault itself.
    fn quiesce(&self, deadline: Duration) {
        let start = Instant::now();
        loop {
            let busy = self.slots.iter().any(|s| {
                let st = s.lock();
                !st.pending.is_empty() || st.writer.as_ref().is_some_and(|w| !w.idle())
            });
            if !busy || start.elapsed() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        for s in &self.slots {
            if let Some(w) = &s.lock().writer {
                w.half_close();
            }
        }
    }
}

impl RemoteLinks for SocketLinks {
    fn send_ctrl(&self, to: Endpoint, meta: Option<WireMeta>, msg: CtrlMsg) {
        self.send(ep_prog(to), codec::encode_ctrl_env(to, meta.as_ref(), &msg));
    }

    fn send_ack(&self, sender: Endpoint, acker: Endpoint, seq: u64) {
        self.send(ep_prog(sender), codec::encode_ack_env(sender, acker, seq));
    }

    fn send_piece(
        &self,
        conn: ConnectionId,
        dst: usize,
        req: RequestId,
        rect: Rect,
        payload: &SharedArray,
    ) {
        let data = payload.as_slice();
        // Header + ids + two rects + length prefix, then the data bytes.
        let est = wire::HEADER_LEN + 8 + 8 + 2 * 32 + 8 + 8 * data.len();
        let frame = wire::encode_payload_with(
            self.pool.take(est),
            conn,
            Rank(dst as u32),
            req,
            codec::wire_rect(rect),
            codec::wire_rect(payload.owned()),
            data,
        );
        self.send(self.conn_importer[conn.0 as usize], frame);
    }
}

/// Injects one inbound mesh frame into the local session. The body is
/// borrowed straight from the reader's receive buffer — only the payload
/// decode copies, and that copy *is* the importer-side array. Returns a
/// fatal description when the frame is structurally wrong for this layer.
fn dispatch(kind: u8, body: &[u8], net: &Net, drop_answers: Option<u32>) -> Result<(), String> {
    match kind {
        codec::KIND_CTRL => {
            let (to, meta, msg) =
                codec::decode_ctrl_env(body).map_err(|e| format!("ctrl envelope: {e}"))?;
            if let (Some(dropped), CtrlMsg::Answer { conn, .. }) = (drop_answers, &msg) {
                if conn.0 == dropped {
                    // Injected codec bug: the collective answer vanishes
                    // between socket and fabric. The liveness oracle must
                    // notice the wedged imports.
                    return Ok(());
                }
            }
            net.deliver_remote_ctrl(to, meta, msg);
            Ok(())
        }
        codec::KIND_ACK => {
            let (sender, acker, seq) =
                codec::decode_ack_env(body).map_err(|e| format!("ack envelope: {e}"))?;
            net.apply_remote_ack(sender, acker, seq);
            Ok(())
        }
        wire::KIND_PAYLOAD => {
            let p = wire::decode_payload(body).map_err(|e| format!("payload: {e}"))?;
            let rect = codec::rect_from(p.rect);
            let payload = SharedArray::from_parts(codec::rect_from(p.owned), p.data)
                .ok_or("payload data disagrees with its owned rect")?;
            net.deliver_remote_piece(p.conn, p.dst.0 as usize, p.req, rect, payload);
            Ok(())
        }
        k => Err(format!("unexpected mesh frame kind {k}")),
    }
}

/// Everything a mesh reader (or the reconnect accept loop) needs about
/// this node, shared by all link threads.
struct MeshCtx {
    me: usize,
    n: usize,
    token: String,
    net: Arc<Net>,
    set: Arc<Mutex<SessionSet>>,
    sid: usize,
    metrics: Arc<EngineMetrics>,
    links: Arc<SocketLinks>,
    apps_done: Arc<AtomicBool>,
    /// Set at the coordinated drain: from then on sockets close in
    /// arbitrary order and every EOF is a normal teardown.
    draining: Arc<AtomicBool>,
    drop_answers: Option<u32>,
    stall: bool,
    /// Peer listener addresses for re-dial; `None` preserves the
    /// historical fail-fast on any mid-run EOF.
    peers: Option<Vec<Addr>>,
}

/// Re-establishes the link to a lower-indexed peer: backoff dial, fresh
/// mesh hello, writer swap (salvage replay inside), reconnect metered.
/// Returns the new connection for the caller to keep reading.
fn reconnect_dial(ctx: &MeshCtx, addr: &Addr, peer: usize) -> Result<Conn, String> {
    let mut conn =
        Conn::dial_with_backoff(addr, RECONNECT_ATTEMPTS, RECONNECT_FIRST, RECONNECT_CAP)
            .map_err(|e| e.to_string())?;
    conn.write_all(&codec::encode_hello(
        codec::KIND_MESH_HELLO,
        &ctx.token,
        ctx.me,
    ))
    .map_err(|e| format!("mesh hello: {e}"))?;
    let wconn = conn.try_clone().map_err(|e| format!("mesh clone: {e}"))?;
    ctx.links.install_writer(
        peer,
        LinkWriter::spawn_with(
            wconn,
            format!("{}-{peer}", ctx.me),
            None,
            Some(Arc::clone(&ctx.metrics)),
            Some(Arc::clone(&ctx.links.pool)),
        ),
    );
    ctx.metrics.net_reconnects.inc();
    Ok(conn)
}

fn mesh_reader_loop(mut reader: FrameReader, peer: usize, ctx: Arc<MeshCtx>) {
    if ctx.stall {
        // Injected malfunction: the socket stays open, inbound traffic is
        // never processed. Peers must hit their import timeout, not hang.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    let metrics = Arc::clone(&ctx.metrics);
    let mut reject = || metrics.net_codec_rejects.inc();
    loop {
        let down = loop {
            match reader.next_slot(&mut reject) {
                Ok(Some(slot)) => {
                    // Receive-side mirror of the writer's tx meters; mesh
                    // hellos are excluded on both sides, so on a clean run
                    // the merged rx sums equal the merged tx sums.
                    metrics.net_rx_frames.inc();
                    metrics
                        .net_rx_bytes
                        .add((wire::HEADER_LEN + slot.body.len()) as u64);
                    metrics.net_rx_buf.set(reader.buffered_hwm() as u64);
                    if let Err(detail) =
                        dispatch(slot.kind, reader.body(&slot), &ctx.net, ctx.drop_answers)
                    {
                        ctx.set
                            .lock()
                            .fail_session(ctx.sid, format!("link to program {peer}: {detail}"));
                        return;
                    }
                }
                Ok(None) => break format!("peer program {peer} disconnected"),
                Err(e) => break format!("link to program {peer} failed: {e}"),
            }
        };
        if ctx.draining.load(Ordering::Acquire) {
            // Coordinated teardown: sockets close in arbitrary order.
            return;
        }
        let Some(peers) = &ctx.peers else {
            if ctx.apps_done.load(Ordering::Acquire) {
                // Normal drain asymmetry: someone finished and closed first.
                return;
            }
            ctx.set.lock().fail_session(ctx.sid, down);
            return;
        };
        // Reconnect is armed: the link matters until the coordinated
        // drain even if our own apps are done — a restarted peer needs
        // every survivor to rejoin its mesh before it can serve anyone.
        // Whichever direction actually broke, make sure the peer observes
        // a dead link too — reconnect needs both sides to abandon it.
        reader.conn().shutdown();
        if peer > ctx.me {
            // The higher-indexed side owns the re-dial (mirroring boot);
            // our accept loop installs the new link and spawns a fresh
            // reader thread. This one's job is over.
            return;
        }
        match reconnect_dial(&ctx, &peers[peer], peer) {
            Ok(conn) => reader = FrameReader::new(conn),
            Err(e) => {
                // A failed re-dial during the teardown race (the peer
                // exited because the session is draining) is not an error.
                if !ctx.draining.load(Ordering::Acquire) {
                    ctx.set
                        .lock()
                        .fail_session(ctx.sid, format!("{down} (reconnect failed: {e})"));
                }
                return;
            }
        }
    }
}

/// Keeps the mesh listener alive after boot, re-accepting higher-indexed
/// peers whose link died (or who were restarted). Invalid hellos are
/// dropped, not fatal — a reconnecting mesh must tolerate strays.
fn accept_loop(listener: Listener, ctx: Arc<MeshCtx>) {
    loop {
        let Ok(c) = listener.accept() else { return };
        if c.set_read_timeout(Some(BOOT_TIMEOUT)).is_err() {
            continue;
        }
        let mut r = FrameReader::new(c);
        let Ok(hello) = read_expected(&mut r, codec::KIND_MESH_HELLO, "mesh hello") else {
            continue;
        };
        let Ok((version, token, from)) = codec::decode_hello(&hello.body) else {
            continue;
        };
        if version != codec::RT_VERSION || token != ctx.token || from <= ctx.me || from >= ctx.n {
            r.conn().shutdown();
            continue;
        }
        if r.conn().set_read_timeout(None).is_err() {
            continue;
        }
        let Ok(wconn) = r.conn().try_clone() else {
            continue;
        };
        ctx.links.install_writer(
            from,
            LinkWriter::spawn_with(
                wconn,
                format!("{}-{from}", ctx.me),
                None,
                Some(Arc::clone(&ctx.metrics)),
                Some(Arc::clone(&ctx.links.pool)),
            ),
        );
        ctx.metrics.net_reconnects.inc();
        let ctx2 = Arc::clone(&ctx);
        if std::thread::Builder::new()
            .name(format!("couplink-net-rd-{}-{from}-r", ctx.me))
            .spawn(move || mesh_reader_loop(r, from, ctx2))
            .is_err()
        {
            return;
        }
    }
}

fn read_expected(reader: &mut FrameReader, kind: u8, what: &str) -> Result<Frame, String> {
    let mut reject = || {};
    match reader.next(&mut reject) {
        Ok(Some(f)) if f.kind == kind => Ok(f),
        Ok(Some(f)) if f.kind == codec::KIND_FATAL => Err(format!(
            "parent/peer reported fatal: {}",
            codec::decode_fatal(&f.body).unwrap_or_else(|_| "<garbled>".into())
        )),
        Ok(Some(f)) => Err(format!("expected {what}, got frame kind {}", f.kind)),
        Ok(None) => Err(format!("connection closed while waiting for {what}")),
        Err(e) => Err(format!("reading {what}: {e}")),
    }
}

/// Runs the child process to completion; returns the process exit code.
pub fn node_main(args: NodeArgs) -> i32 {
    match run_node(&args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("couplink-node[{}]: {e}", args.prog);
            3
        }
    }
}

fn run_node(args: &NodeArgs) -> Result<(), String> {
    // The legacy-data-plane switch covers both halves: per-frame writes
    // (link layer) and the reference per-element codec (proto layer).
    wire::set_legacy_codec(net_legacy());
    std::thread::Builder::new()
        .name("couplink-node-watchdog".into())
        .spawn(|| {
            std::thread::sleep(WATCHDOG);
            eprintln!("couplink-node: watchdog expired, aborting");
            std::process::exit(9);
        })
        .map_err(|e| format!("spawning watchdog: {e}"))?;

    let me = args.prog;
    let parent_addr = Addr::parse(&args.connect)?;
    let backend = match parent_addr {
        Addr::Uds(_) => SocketBackend::Uds,
        Addr::Tcp(_) => SocketBackend::Tcp,
    };
    let mut parent_wr = Conn::dial(&parent_addr).map_err(|e| format!("dialing parent: {e}"))?;
    parent_wr
        .set_read_timeout(Some(BOOT_TIMEOUT))
        .map_err(|e| format!("parent socket: {e}"))?;
    let mut parent_rd = FrameReader::new(
        parent_wr
            .try_clone()
            .map_err(|e| format!("cloning parent socket: {e}"))?,
    );

    let claim = args.claim.unwrap_or(me);
    parent_wr
        .write_all(&codec::encode_hello(codec::KIND_HELLO, &args.token, claim))
        .map_err(|e| format!("sending hello: {e}"))?;

    let plan_frame = read_expected(&mut parent_rd, codec::KIND_PLAN, "plan")?;
    let plan = codec::decode_plan(&plan_frame.body).map_err(|e| format!("plan: {e}"))?;
    let topo = plan.topology()?;
    let n = topo.programs.len();
    if me >= n {
        return Err(format!("program index {me} out of range ({n} programs)"));
    }

    // --- durable journal ---
    // Opened before the session exists: replay and truncation meter into
    // the session's instrumentation, which is therefore pre-created and
    // handed to the fabric below.
    let metrics = Arc::new(EngineMetrics::new());
    let recovery_start = Instant::now();
    let mut recovered: Vec<WalRecord> = Vec::new();
    let wal_handle = match &plan.wal_dir {
        None => None,
        Some(dir) => {
            match FileWal::open(
                Path::new(dir),
                &format!("node-{me}"),
                FileWal::SEGMENT_BYTES,
                Arc::clone(&metrics),
            ) {
                Ok((fw, recs)) => {
                    recovered = recs;
                    Some(WalHandle::new(fw))
                }
                Err(e) => {
                    // The journal cannot be trusted; tell the parent why
                    // before dying so the run fails with the cause, not a
                    // silent child exit.
                    let _ = parent_wr.write_all(&codec::encode_fatal(&e.to_string()));
                    return Err(format!("opening WAL: {e}"));
                }
            }
        }
    };

    // --- fabric session ---
    // Built *before* the mesh so a restarted node can replay its journal
    // into the session while no live frame can possibly arrive.
    let pool = BufPool::new(Some(Arc::clone(&metrics)));
    let links = Arc::new(SocketLinks::new(
        n,
        topo.conns.iter().map(|c| c.importer_prog).collect(),
        wal_handle.clone(),
        Arc::clone(&pool),
    ));
    let opts = FabricOptions {
        buddy_help: plan.buddy_help,
        import_timeout: Duration::from_secs_f64(plan.import_timeout_s),
        buffer_capacity: None,
        traces: plan
            .traces
            .iter()
            .filter(|&&(p, _, _)| p == me)
            .map(|&(p, r, c)| (p, r, ConnectionId(c)))
            .collect(),
        chaos: plan.chaos,
        drop_buddy_help: false,
        hierarchical: plan.hierarchical,
        wal: wal_handle.clone(),
    };
    let set = Arc::new(Mutex::new(SessionSet::new(&ExecutorOptions::default())));
    let sid = set.lock().add_partial_session(
        topo.clone(),
        opts,
        me,
        links.clone(),
        Some(Arc::clone(&metrics)),
    );
    let _ = links.metrics.set(Arc::clone(&metrics));
    let net = set.lock().session_net(sid);

    let grid_cols = plan.grid.1;

    // Export handles are taken up front: journal replay re-drives them,
    // and the application threads then resume after the replayed prefix.
    let mut export_handles: HashMap<(usize, usize), ExportAccess> = HashMap::new();
    for spec in &plan.exports {
        let Some(prog) = topo.program_idx(&spec.program) else {
            return Err(format!("plan exports unknown program {}", spec.program));
        };
        if prog != me {
            continue;
        }
        for rank in 0..topo.programs[me].procs {
            export_handles.insert(
                (rank, spec.region),
                set.lock().take_export(sid, me, rank, spec.region),
            );
        }
    }

    // --- journal replay (restart only) ---
    // Records are re-driven in file order: journaled deliveries go into
    // the mailboxes (the fabric suppresses re-sending sequenced traffic
    // and journaling while replaying), journaled exports regenerate their
    // deterministic fill and re-drive the export path (pieces re-sent to
    // the mesh are deduped by the importer). Per-region counts feed the
    // application threads' resume points.
    let mut resumed: HashMap<(usize, usize), usize> = HashMap::new();
    if plan.restart {
        net.begin_replay();
        for rec in &recovered {
            match rec {
                WalRecord::Delivered { ep, meta, msg } => {
                    net.deliver_remote_ctrl(*ep, Some(*meta), *msg);
                }
                WalRecord::AppExport { ep, region, ts } => {
                    let Endpoint::Proc { prog, rank } = *ep else {
                        continue;
                    };
                    if prog != me {
                        continue;
                    }
                    let key = (rank, *region as usize);
                    if let Some(h) = export_handles.get_mut(&key) {
                        let owned = topo.programs[me].exports[key.1].decomp.owned(rank);
                        let data = LocalArray::from_fn(owned, |row, col| {
                            cell_value(ts.value(), row, col, grid_cols)
                        });
                        h.export(*ts, &data)
                            .map_err(|e| format!("replaying export: {e}"))?;
                        *resumed.entry(key).or_insert(0) += 1;
                    }
                }
            }
        }
        // Wait for the injected records to drain through the tasks, then
        // re-enable live journaling and sending.
        for _ in 0..600 {
            if net.mailboxes_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        std::thread::sleep(Duration::from_millis(50));
        net.end_replay();
        metrics
            .recovery_ms
            .observe(recovery_start.elapsed().as_millis() as u64);
    }

    // --- mesh listener ---
    // Mesh listener lives next to the parent's bootstrap socket (UDS) or
    // on another ephemeral loopback port (TCP).
    let mesh_dir = match &parent_addr {
        Addr::Uds(path) => path
            .parent()
            .ok_or("parent socket path has no directory")?
            .to_path_buf(),
        Addr::Tcp(_) => std::env::temp_dir(),
    };
    if plan.restart && backend == SocketBackend::Uds {
        // The previous incarnation was SIGKILLed: its socket file is still
        // bound to a dead listener and must go before we can rebind.
        let _ = std::fs::remove_file(mesh_dir.join(format!("mesh-{me}.sock")));
    }
    let listener = Listener::bind(backend, &mesh_dir, &format!("mesh-{me}"))
        .map_err(|e| format!("binding mesh listener: {e}"))?;
    let listen_addr = listener.addr().map_err(|e| format!("mesh address: {e}"))?;
    parent_wr
        .write_all(&codec::encode_listening(&listen_addr.to_string()))
        .map_err(|e| format!("sending listening: {e}"))?;

    let peers_frame = read_expected(&mut parent_rd, codec::KIND_PEERS, "peer table")?;
    let peers = codec::decode_peers(&peers_frame.body).map_err(|e| format!("peers: {e}"))?;
    if peers.len() != n {
        return Err(format!(
            "peer table has {} entries for {n} programs",
            peers.len()
        ));
    }

    // Sever fault, armed only on the writing side's boot-time links — a
    // reconnect-installed replacement writer never severs again.
    let sever = match plan.fault {
        Some(NodeFault::SeverLink {
            prog,
            peer,
            after_tx,
        }) if prog == me => Some((peer, after_tx)),
        _ => None,
    };
    let boot_writer = |peer: usize, conn: Conn| {
        let sev = sever.and_then(|(p, after)| (p == peer).then_some(after));
        LinkWriter::spawn_with(
            conn,
            format!("{me}-{peer}"),
            sev,
            Some(Arc::clone(&metrics)),
            Some(Arc::clone(&pool)),
        )
    };

    // Form the mesh: dial the lower-indexed programs (their listeners are
    // guaranteed bound — the parent saw their LISTENING before
    // broadcasting PEERS), accept from the higher-indexed ones.
    let mut readers: Vec<Option<FrameReader>> = (0..n).map(|_| None).collect();
    for (j, addr) in peers.iter().enumerate().take(me) {
        let mut c =
            Conn::dial(&Addr::parse(addr)?).map_err(|e| format!("dialing program {j}: {e}"))?;
        c.write_all(&codec::encode_hello(
            codec::KIND_MESH_HELLO,
            &args.token,
            me,
        ))
        .map_err(|e| format!("mesh hello to {j}: {e}"))?;
        links.install_writer(
            j,
            boot_writer(j, c.try_clone().map_err(|e| format!("mesh clone: {e}"))?),
        );
        readers[j] = Some(FrameReader::new(c));
    }
    for _ in me + 1..n {
        let c = listener.accept().map_err(|e| format!("mesh accept: {e}"))?;
        c.set_read_timeout(Some(BOOT_TIMEOUT))
            .map_err(|e| format!("mesh socket: {e}"))?;
        let mut r = FrameReader::new(c);
        let hello = read_expected(&mut r, codec::KIND_MESH_HELLO, "mesh hello")?;
        let (version, token, from) =
            codec::decode_hello(&hello.body).map_err(|e| format!("mesh hello: {e}"))?;
        if version != codec::RT_VERSION {
            return Err(format!("mesh peer speaks version {version}"));
        }
        if token != args.token {
            return Err("mesh peer presented a wrong token".into());
        }
        if from <= me || from >= n || readers[from].is_some() {
            return Err(format!("mesh peer claims invalid program {from}"));
        }
        r.conn()
            .set_read_timeout(None)
            .map_err(|e| format!("mesh socket: {e}"))?;
        links.install_writer(
            from,
            boot_writer(
                from,
                r.conn()
                    .try_clone()
                    .map_err(|e| format!("mesh clone: {e}"))?,
            ),
        );
        readers[from] = Some(r);
    }

    let apps_done = Arc::new(AtomicBool::new(false));
    let draining = Arc::new(AtomicBool::new(false));
    let stall = matches!(plan.fault, Some(NodeFault::StallMeshReader { prog }) if prog == me);
    let drop_answers = match plan.fault {
        Some(NodeFault::DropAnswers { conn }) => Some(conn),
        _ => None,
    };
    // Reconnect is armed by durability (the kill-and-restart runs) or an
    // explicit sever fault anywhere in the mesh; otherwise mid-run link
    // death keeps its historical fail-fast meaning.
    let reconnect =
        plan.wal_dir.is_some() || matches!(plan.fault, Some(NodeFault::SeverLink { .. }));
    let ctx = Arc::new(MeshCtx {
        me,
        n,
        token: args.token.clone(),
        net: Arc::clone(&net),
        set: Arc::clone(&set),
        sid,
        metrics: Arc::clone(&metrics),
        links: Arc::clone(&links),
        apps_done: Arc::clone(&apps_done),
        draining: Arc::clone(&draining),
        drop_answers,
        stall,
        peers: if reconnect {
            Some(
                peers
                    .iter()
                    .map(|a| Addr::parse(a))
                    .collect::<Result<Vec<_>, _>>()?,
            )
        } else {
            None
        },
    });
    let mut reader_threads = Vec::new();
    for (peer, slot) in readers.iter_mut().enumerate() {
        let Some(reader) = slot.take() else { continue };
        let ctx = Arc::clone(&ctx);
        reader_threads.push(
            std::thread::Builder::new()
                .name(format!("couplink-net-rd-{me}-{peer}"))
                .spawn(move || mesh_reader_loop(reader, peer, ctx))
                .map_err(|e| format!("spawning mesh reader: {e}"))?,
        );
    }
    if reconnect {
        // The listener outlives boot: higher-indexed peers re-dial here
        // after a link death or their own restart.
        let ctx = Arc::clone(&ctx);
        std::thread::Builder::new()
            .name(format!("couplink-net-accept-{me}"))
            .spawn(move || accept_loop(listener, ctx))
            .map_err(|e| format!("spawning accept loop: {e}"))?;
    }

    parent_wr
        .write_all(&codec::encode_bare(codec::KIND_READY))
        .map_err(|e| format!("sending ready: {e}"))?;
    read_expected(&mut parent_rd, codec::KIND_GO, "go")?;

    // --- application threads ---
    let scale = plan.time_scale;
    let mut exp_threads = Vec::new();
    for spec in &plan.exports {
        if topo.program_idx(&spec.program) != Some(me) {
            continue;
        }
        for rank in 0..topo.programs[me].procs {
            let mut h = export_handles
                .remove(&(rank, spec.region))
                .ok_or_else(|| format!("export region {} specified twice", spec.region))?;
            let done = resumed.get(&(rank, spec.region)).copied().unwrap_or(0);
            let owned = topo.programs[me].exports[spec.region].decomp.owned(rank);
            let (t0, dt, count) = (spec.t0, spec.dt, spec.count);
            let compute = spec.compute.get(rank).copied().unwrap_or(0.0);
            let abort_after = match plan.fault {
                Some(NodeFault::AbortAfterExports {
                    prog: p,
                    rank: r,
                    after,
                }) if p == me && r == rank => Some(after),
                _ => None,
            };
            exp_threads.push((
                rank,
                std::thread::spawn(move || -> Result<(), String> {
                    // `done` exports were replayed from the journal; the
                    // schedule resumes after them.
                    for k in done..count {
                        if compute > 0.0 {
                            std::thread::sleep(Duration::from_secs_f64(compute * scale));
                        }
                        let t = t0 + k as f64 * dt;
                        let data = LocalArray::from_fn(owned, |row, col| {
                            cell_value(t, row, col, grid_cols)
                        });
                        h.export(ts(t), &data).map_err(|e| e.to_string())?;
                        if abort_after == Some(k + 1) {
                            // Injected malfunction: die mid-run with the
                            // sockets cut, exactly like a crashed peer.
                            std::process::exit(17);
                        }
                    }
                    Ok(())
                }),
            ));
        }
    }
    let mut imp_threads = Vec::new();
    for spec in &plan.imports {
        let Some(prog) = topo.program_idx(&spec.program) else {
            return Err(format!("plan imports unknown program {}", spec.program));
        };
        if prog != me {
            continue;
        }
        for rank in 0..topo.programs[me].procs {
            let mut h = set.lock().take_import(sid, me, rank, spec.region);
            let owned = topo.programs[me].imports[spec.region].decomp.owned(rank);
            let (t0, dt, count, compute, startup) =
                (spec.t0, spec.dt, spec.count, spec.compute, spec.startup);
            let verify = plan.verify_values;
            let region = spec.region;
            imp_threads.push((
                region,
                rank,
                std::thread::spawn(move || -> (Vec<Option<f64>>, Option<String>) {
                    std::thread::sleep(Duration::from_secs_f64(startup * scale));
                    let mut got = Vec::with_capacity(count);
                    let mut dest = LocalArray::zeros(owned);
                    for k in 0..count {
                        if compute > 0.0 {
                            std::thread::sleep(Duration::from_secs_f64(compute * scale));
                        }
                        match h.import(ts(t0 + k as f64 * dt), &mut dest) {
                            Err(e) => return (got, Some(e.to_string())),
                            Ok(None) => got.push(None),
                            Ok(Some(m)) => {
                                if verify {
                                    if let Some(err) =
                                        verify_cells(&dest, owned, m.value(), grid_cols)
                                    {
                                        return (got, Some(err));
                                    }
                                }
                                got.push(Some(m.value()));
                            }
                        }
                    }
                    (got, None)
                }),
            ));
        }
    }

    let mut export_errors = Vec::new();
    for (rank, t) in exp_threads {
        if let Err(e) = t.join().map_err(|_| "exporter thread panicked")? {
            export_errors.push((me, rank, e));
        }
    }
    let mut imports_done = Vec::new();
    let mut matches = Vec::new();
    for (region, rank, t) in imp_threads {
        let (got, err) = t.join().map_err(|_| "importer thread panicked")?;
        imports_done.push((me, rank, got.len() as u64, err));
        if rank == 0 {
            let conn = topo.programs[me].imports[region].conn;
            matches.push((conn.0, got));
        }
    }

    // From here on a peer EOF is expected (someone drains first) — the
    // fabric must keep serving peers that are still importing from us.
    apps_done.store(true, Ordering::Release);
    parent_wr
        .write_all(&codec::encode_bare(codec::KIND_APP_DONE))
        .map_err(|e| format!("sending app-done: {e}"))?;

    let drain_early = matches!(plan.fault, Some(NodeFault::DrainEarly { prog }) if prog == me);
    if !drain_early {
        read_expected(&mut parent_rd, codec::KIND_DRAIN, "drain")?;
    }
    draining.store(true, Ordering::Release);

    let shutdown = set.lock().shutdown_session(sid);
    let (stats, traces, shutdown_error) = match shutdown {
        Ok(rep) => (
            rep.stats
                .into_iter()
                .enumerate()
                .map(|(c, per_rank)| (c as u32, per_rank))
                .collect(),
            rep.traces
                .into_iter()
                .map(|(p, r, c, t)| (p, r, c.0, t))
                .collect(),
            None,
        ),
        Err(e) => (Vec::new(), Vec::new(), Some(e.to_string())),
    };
    if shutdown_error.is_none() {
        if let Some(w) = &wal_handle {
            // A cleanly drained session never needs replaying again:
            // everything is acked *and* consumed, so sealed segments go.
            w.sync();
            w.prune();
        }
    }
    // Flush the data plane before the counter snapshot: the quiesce lets
    // every writer drain (so every tx frame is metered), then half-closes
    // the links; joining the readers waits for the peers' symmetric
    // half-close, so every frame a peer wrote has been rx-metered here.
    // On a clean run the merged snapshots then satisfy exact tx/rx
    // conservation. A stalled reader fault never reaches EOF — its node
    // skips the join (the snapshot is already as complete as that run can
    // make it); crashed peers produce EOF/reset when the OS closes them.
    links.quiesce(Duration::from_secs(5));
    if !stall {
        for t in reader_threads {
            let _ = t.join();
        }
    }
    let report = NodeReport {
        prog: me,
        stats,
        traces,
        matches,
        imports_done,
        export_errors,
        shutdown_error,
        counters: metrics.snapshot().counters,
    };
    parent_wr
        .write_all(&codec::encode_report(&report))
        .map_err(|e| format!("sending report: {e}"))?;
    Ok(())
}

fn verify_cells(dest: &LocalArray, owned: Rect, m: f64, grid_cols: usize) -> Option<String> {
    for row in owned.row0..owned.row0 + owned.rows {
        for col in owned.col0..owned.col0 + owned.cols {
            let want = cell_value(m, row, col, grid_cols);
            let got = dest.get(row, col);
            if got != want {
                return Some(format!(
                    "data corruption at ({row},{col}) for D@{m}: got {got}, want {want}"
                ));
            }
        }
    }
    None
}
