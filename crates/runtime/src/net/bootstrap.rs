//! Parent-side orchestration of a socket session: spawn one
//! `couplink-node` process per program, walk them through the handshake,
//! run the coordinated drain, and merge their reports into one
//! session-wide view.
//!
//! The handshake is deliberately sequential and fail-fast: any child that
//! presents the wrong protocol version, a wrong token, an out-of-range
//! program index, or a program index already claimed gets a `FATAL` frame
//! and the whole bootstrap aborts with a typed error — a half-connected
//! mesh is never allowed to start. Once `GO` is out, the parent only
//! *observes*: per-child reader threads translate frames and EOFs into
//! events, and the two-phase wait (everyone app-done or dead, then drain,
//! then everyone reported or dead) tolerates children dying at any point.

use std::collections::HashMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use couplink_metrics::{CounterSnapshot, EngineMetrics};
use couplink_proto::{ConnectionId, ExportStats, Trace};
use couplink_time::{ts, Timestamp};

use super::codec::{self, NodePlan, NodeReport};
use super::link::{Conn, FrameReader, Listener, SocketBackend};

/// Knobs for [`run_plan`].
#[derive(Debug, Clone)]
pub struct NetOptions {
    /// Socket flavour for bootstrap and mesh links alike.
    pub backend: SocketBackend,
    /// Path to the `couplink-node` binary.
    pub node_bin: PathBuf,
    /// Wall-clock budget for the whole session, handshake included.
    pub deadline: Duration,
    /// Test hook: spawn program `.0` claiming to be program `.1`, to
    /// exercise the duplicate/bad-claim rejection path.
    pub misclaim: Option<(usize, usize)>,
    /// Give every node a file-backed write-ahead journal under the
    /// session directory (implied by `kill_restart`). Besides durability
    /// this arms mesh-link reconnect in the nodes.
    pub durable: bool,
    /// Chaos: SIGKILL one node at its `APP_DONE` and restart it from its
    /// journal.
    pub kill_restart: Option<KillSpec>,
    /// Extra environment variables for every spawned node — how the
    /// benchmark flips `COUPLINK_NET_LEGACY` per run without mutating
    /// the parent's own environment.
    pub env: Vec<(String, String)>,
}

/// Kill-and-restart chaos, driven by the parent: the victim is SIGKILLed
/// the moment it announces `APP_DONE` (journal populated, session still
/// live — its peers may still need its stores), then respawned with
/// `restart` set so it replays the journal, rebinds its mesh address, and
/// rejoins as its peers re-dial.
#[derive(Debug, Clone, Copy)]
pub struct KillSpec {
    /// Program to kill and restart.
    pub prog: usize,
    /// Flip a byte in its journal before the restart: the reopened WAL
    /// must be rejected as corrupt, failing the whole run loudly.
    pub corrupt_wal: bool,
}

impl NetOptions {
    /// Options with the given node binary, UDS backend, and a 120 s deadline.
    pub fn new(node_bin: PathBuf) -> NetOptions {
        NetOptions {
            backend: SocketBackend::Uds,
            node_bin,
            deadline: Duration::from_secs(120),
            misclaim: None,
            durable: false,
            kill_restart: None,
            env: Vec::new(),
        }
    }
}

/// Why a socket session could not be bootstrapped or collected.
#[derive(Debug)]
pub enum BootstrapError {
    /// The plan's embedded configuration failed to validate.
    Plan(String),
    /// Socket or filesystem failure on the parent side.
    Io(io::Error),
    /// A child process could not be spawned.
    Spawn(String),
    /// The deadline expired during the named phase.
    Timeout(&'static str),
    /// A frame from a child failed to decode.
    Wire(String),
    /// A child spoke the wrong runtime protocol version.
    VersionSkew {
        /// The version the child announced.
        got: u32,
    },
    /// A child presented the wrong session token.
    BadToken,
    /// A child claimed a program index outside the topology.
    BadProgram {
        /// The claimed index.
        got: usize,
    },
    /// Two children claimed the same program index.
    DuplicateProgram {
        /// The doubly-claimed index.
        prog: usize,
    },
}

impl std::fmt::Display for BootstrapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BootstrapError::Plan(e) => write!(f, "bad plan: {e}"),
            BootstrapError::Io(e) => write!(f, "bootstrap i/o: {e}"),
            BootstrapError::Spawn(e) => write!(f, "spawning node: {e}"),
            BootstrapError::Timeout(phase) => write!(f, "bootstrap timed out during {phase}"),
            BootstrapError::Wire(e) => write!(f, "bad frame from node: {e}"),
            BootstrapError::VersionSkew { got } => {
                write!(
                    f,
                    "node speaks protocol version {got}, want {}",
                    codec::RT_VERSION
                )
            }
            BootstrapError::BadToken => write!(f, "node presented a wrong session token"),
            BootstrapError::BadProgram { got } => {
                write!(f, "node claimed out-of-range program {got}")
            }
            BootstrapError::DuplicateProgram { prog } => {
                write!(f, "two nodes claimed program {prog}")
            }
        }
    }
}

impl std::error::Error for BootstrapError {}

impl From<io::Error> for BootstrapError {
    fn from(e: io::Error) -> Self {
        BootstrapError::Io(e)
    }
}

/// The merged outcome of a socket session — the cross-process analogue of
/// the threaded fabric's `FabricReport`, plus the application-level
/// outcomes the node processes observed.
#[derive(Debug)]
pub struct NetReport {
    /// Per-connection exporter statistics (per exporting rank), indexed by
    /// connection id.
    pub stats: Vec<Vec<ExportStats>>,
    /// Armed traces, `(program, rank, connection, trace)`.
    pub traces: Vec<(usize, usize, ConnectionId, Trace)>,
    /// Rank-0 matched timestamps per connection, indexed by connection id.
    pub matches: Vec<Vec<Option<Timestamp>>>,
    /// Per importer rank: `(prog, rank, imports completed, error)`.
    pub imports_done: Vec<(usize, usize, u64, Option<String>)>,
    /// Exporter thread failures: `(prog, rank, error)`.
    pub export_errors: Vec<(usize, usize, String)>,
    /// Fabric drain failures per program.
    pub shutdown_errors: Vec<(usize, String)>,
    /// Programs that exited without delivering a report.
    pub crashed: Vec<usize>,
    /// Session-wide counters: field-wise sum of the per-process snapshots
    /// (high-water marks take the max).
    pub counters: CounterSnapshot,
    /// The raw per-process snapshots, indexed by program (crashed
    /// programs report zeros).
    pub process_counters: Vec<CounterSnapshot>,
}

/// What a per-child reader thread distilled from the child's frames.
enum Event {
    AppDone,
    Report(Box<NodeReport>),
    Gone,
}

/// Kills and reaps every still-tracked child on drop, so no error path
/// can leak node processes into the test harness.
struct Children(Vec<Option<std::process::Child>>);

impl Drop for Children {
    fn drop(&mut self) {
        for child in self.0.iter_mut().flatten() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

static SESSION_SEQ: AtomicU64 = AtomicU64::new(0);

fn zero_counters() -> CounterSnapshot {
    EngineMetrics::default().snapshot().counters
}

fn read_frame(
    reader: &mut FrameReader,
    want: u8,
    phase: &'static str,
) -> Result<Vec<u8>, BootstrapError> {
    let mut reject = || {};
    match reader.next(&mut reject) {
        Ok(Some(f)) if f.kind == want => Ok(f.body),
        Ok(Some(f)) if f.kind == codec::KIND_FATAL => Err(BootstrapError::Wire(format!(
            "node reported fatal during {phase}: {}",
            codec::decode_fatal(&f.body).unwrap_or_else(|_| "<garbled>".into())
        ))),
        Ok(Some(f)) => Err(BootstrapError::Wire(format!(
            "expected frame kind {want} during {phase}, got {}",
            f.kind
        ))),
        Ok(None) => Err(BootstrapError::Wire(format!(
            "node closed its socket during {phase}"
        ))),
        Err(super::link::NetError::Io(e))
            if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
        {
            Err(BootstrapError::Timeout(phase))
        }
        Err(e) => Err(BootstrapError::Wire(format!("during {phase}: {e}"))),
    }
}

/// Runs one socket session end to end: spawn, handshake, go, drain,
/// merge. Returns the merged report, or a typed error if the session
/// could not even be brought up (post-`GO` failures are *data* — they
/// surface inside the report, not as `Err`).
pub fn run_plan(plan: &NodePlan, opts: &NetOptions) -> Result<NetReport, BootstrapError> {
    let topo = plan.topology().map_err(BootstrapError::Plan)?;
    let n = topo.programs.len();
    let deadline = Instant::now() + opts.deadline;

    if let Some(kill) = &opts.kill_restart {
        if kill.prog >= n {
            return Err(BootstrapError::Plan(format!(
                "kill-restart names out-of-range program {}",
                kill.prog
            )));
        }
        if matches!(opts.backend, SocketBackend::Tcp) {
            // A restarted node must rebind its original mesh address for
            // the peers' re-dial to find it; only the deterministic UDS
            // socket paths make that possible.
            return Err(BootstrapError::Plan(
                "kill-restart chaos requires the uds backend".into(),
            ));
        }
    }

    let dir = std::env::temp_dir().join(format!(
        "couplink-{}-{}",
        std::process::id(),
        SESSION_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir)?;
    let _cleanup = DirCleanup(dir.clone());

    // Durability rewrites the plan: every node gets a file-backed journal
    // under the session directory (per-node file names, shared dir).
    let mut plan = plan.clone();
    if (opts.durable || opts.kill_restart.is_some()) && plan.wal_dir.is_none() {
        let d = dir.join("wal");
        std::fs::create_dir_all(&d)?;
        plan.wal_dir = Some(d.to_string_lossy().into_owned());
    }
    let plan = &plan;
    let wal_dir = plan.wal_dir.clone().map(PathBuf::from);

    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_nanos();
    let token = format!("{:x}-{:x}", nanos, std::process::id());

    let listener = Listener::bind(opts.backend, &dir, "boot")?;
    listener.set_nonblocking(true)?;
    let boot_addr = listener.addr()?.to_string();

    // Spawn every program as its own process.
    let mut children = Children(Vec::new());
    for prog in 0..n {
        let claim = match opts.misclaim {
            Some((spawned, claimed)) if spawned == prog => Some(claimed),
            _ => None,
        };
        children
            .0
            .push(Some(spawn_node(opts, &boot_addr, &token, prog, claim)?));
    }

    // Accept + hello: map sockets to program indices, rejecting anything
    // that should not join this session.
    let mut writers: Vec<Option<Conn>> = (0..n).map(|_| None).collect();
    let mut readers: Vec<Option<FrameReader>> = (0..n).map(|_| None).collect();
    let mut joined = 0usize;
    while joined < n {
        let conn = match listener.accept() {
            Ok(c) => c,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(BootstrapError::Timeout("accept"));
                }
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(e) => return Err(e.into()),
        };
        conn.set_read_timeout(Some(Duration::from_secs(30)))?;
        let mut writer = conn.try_clone()?;
        let mut reader = FrameReader::new(conn);
        let body = read_frame(&mut reader, codec::KIND_HELLO, "hello")?;
        let (version, peer_token, prog) =
            codec::decode_hello(&body).map_err(|e| BootstrapError::Wire(format!("hello: {e}")))?;
        let reject = |writer: &mut Conn, reason: &str| {
            let _ = writer.write_all(&codec::encode_fatal(reason));
        };
        if version != codec::RT_VERSION {
            reject(&mut writer, "protocol version mismatch");
            return Err(BootstrapError::VersionSkew { got: version });
        }
        if peer_token != token {
            reject(&mut writer, "bad session token");
            return Err(BootstrapError::BadToken);
        }
        if prog >= n {
            reject(&mut writer, "program index out of range");
            return Err(BootstrapError::BadProgram { got: prog });
        }
        if writers[prog].is_some() {
            reject(&mut writer, "program index already claimed");
            return Err(BootstrapError::DuplicateProgram { prog });
        }
        writers[prog] = Some(writer);
        readers[prog] = Some(reader);
        joined += 1;
    }
    let mut writers: Vec<Conn> = writers.into_iter().map(Option::unwrap).collect();
    let mut readers: Vec<FrameReader> = readers.into_iter().map(Option::unwrap).collect();

    // PLAN → LISTENING → PEERS → READY → GO.
    let plan_frame = codec::encode_plan(plan);
    for w in &mut writers {
        w.write_all(&plan_frame)?;
    }
    let mut mesh_addrs = Vec::with_capacity(n);
    for r in &mut readers {
        let body = read_frame(r, codec::KIND_LISTENING, "listening")?;
        mesh_addrs.push(
            codec::decode_listening(&body)
                .map_err(|e| BootstrapError::Wire(format!("listening: {e}")))?,
        );
    }
    let peers_frame = codec::encode_peers(&mesh_addrs);
    for w in &mut writers {
        w.write_all(&peers_frame)?;
    }
    for r in &mut readers {
        read_frame(r, codec::KIND_READY, "ready")?;
    }
    for w in &mut writers {
        w.write_all(&codec::encode_bare(codec::KIND_GO))?;
    }

    // From here on children own the pace; the parent just watches. One
    // reader thread per child turns its frames into events.
    let (tx, rx) = mpsc::channel::<(usize, Event)>();
    let mut reader_threads = Vec::new();
    for (prog, reader) in readers.into_iter().enumerate() {
        reader.conn().set_read_timeout(None)?;
        let tx = tx.clone();
        reader_threads.push(
            std::thread::Builder::new()
                .name(format!("couplink-boot-rd-{prog}"))
                .spawn(move || reader_loop(prog, reader, tx))
                .map_err(|e| BootstrapError::Spawn(format!("reader thread: {e}")))?,
        );
    }

    // Phase 1: every program finishes its application work or dies. The
    // kill-restart chaos hooks in here: the victim's APP_DONE triggers the
    // SIGKILL + respawn instead of marking it done — the *restarted*
    // incarnation's APP_DONE is the one that counts.
    let mut pending_kill = opts.kill_restart;
    let mut expect_gone = vec![0usize; n];
    let mut app_done = vec![false; n];
    let mut gone = vec![false; n];
    let mut reports: Vec<Option<NodeReport>> = (0..n).map(|_| None).collect();
    let settled = |app_done: &[bool], gone: &[bool], reports: &[Option<NodeReport>]| {
        (0..n).all(|p| app_done[p] || gone[p] || reports[p].is_some())
    };
    while !settled(&app_done, &gone, &reports) {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(BootstrapError::Timeout("application phase"));
        }
        match rx.recv_timeout(remaining) {
            Ok((p, Event::AppDone)) => {
                if matches!(pending_kill, Some(k) if k.prog == p) {
                    let kill = pending_kill.take().unwrap();
                    // The old incarnation's reader will see EOF and report
                    // it dead; that death is expected, not a crash.
                    expect_gone[p] += 1;
                    reader_threads.push(restart_node(
                        &kill,
                        wal_dir.as_deref(),
                        plan,
                        opts,
                        &boot_addr,
                        &token,
                        &listener,
                        &mesh_addrs,
                        deadline,
                        &mut children,
                        &mut writers,
                        &tx,
                    )?);
                } else {
                    app_done[p] = true;
                }
            }
            Ok((p, Event::Report(rep))) => reports[p] = Some(*rep),
            Ok((p, Event::Gone)) => {
                if expect_gone[p] > 0 {
                    expect_gone[p] -= 1;
                } else {
                    gone[p] = true;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                return Err(BootstrapError::Timeout("application phase"))
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }

    // Coordinated drain: tell the survivors to shut their fabric down.
    // Write errors are expected here — a child may have drained early or
    // died since its last event.
    for (p, w) in writers.iter_mut().enumerate() {
        if !gone[p] && reports[p].is_none() {
            let _ = w.write_all(&codec::encode_bare(codec::KIND_DRAIN));
        }
    }

    // Phase 2: every program reports or dies.
    while !(0..n).all(|p| gone[p] || reports[p].is_some()) {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(BootstrapError::Timeout("drain phase"));
        }
        match rx.recv_timeout(remaining) {
            Ok((p, Event::Report(rep))) => reports[p] = Some(*rep),
            Ok((p, Event::Gone)) => {
                if expect_gone[p] > 0 {
                    expect_gone[p] -= 1;
                } else {
                    gone[p] = true;
                }
            }
            Ok((_, Event::AppDone)) => {}
            Err(mpsc::RecvTimeoutError::Timeout) => {
                return Err(BootstrapError::Timeout("drain phase"))
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    drop(tx);
    drop(writers);
    for t in reader_threads {
        let _ = t.join();
    }

    // Reap within the deadline; anything still alive gets killed by the
    // guard below.
    for child in children.0.iter_mut() {
        let Some(c) = child.as_mut() else { continue };
        loop {
            match c.try_wait() {
                Ok(Some(_)) => {
                    child.take();
                    break;
                }
                Ok(None) if Instant::now() >= deadline => break,
                Ok(None) => std::thread::sleep(Duration::from_millis(10)),
                Err(_) => break,
            }
        }
    }
    drop(children);

    Ok(merge(topo.conns.len(), reports))
}

fn spawn_node(
    opts: &NetOptions,
    boot_addr: &str,
    token: &str,
    prog: usize,
    claim: Option<usize>,
) -> Result<std::process::Child, BootstrapError> {
    let mut cmd = std::process::Command::new(&opts.node_bin);
    cmd.arg("--connect")
        .arg(boot_addr)
        .arg("--prog")
        .arg(prog.to_string())
        .arg("--token")
        .arg(token);
    if let Some(c) = claim {
        cmd.arg("--claim").arg(c.to_string());
    }
    cmd.envs(opts.env.iter().map(|(k, v)| (k.as_str(), v.as_str())));
    cmd.spawn()
        .map_err(|e| BootstrapError::Spawn(format!("{}: {e}", opts.node_bin.display())))
}

/// Body of a per-child reader thread: translate the child's frames and
/// its EOF into events for the phase loops.
fn reader_loop(prog: usize, mut reader: FrameReader, tx: mpsc::Sender<(usize, Event)>) {
    let mut reject = || {};
    loop {
        match reader.next(&mut reject) {
            Ok(Some(f)) if f.kind == codec::KIND_APP_DONE => {
                let _ = tx.send((prog, Event::AppDone));
            }
            Ok(Some(f)) if f.kind == codec::KIND_REPORT => match codec::decode_report(&f.body) {
                Ok(rep) => {
                    let _ = tx.send((prog, Event::Report(Box::new(rep))));
                }
                Err(_) => {
                    let _ = tx.send((prog, Event::Gone));
                    return;
                }
            },
            Ok(Some(_)) => {}
            Ok(None) | Err(_) => {
                let _ = tx.send((prog, Event::Gone));
                return;
            }
        }
    }
}

/// SIGKILLs the victim and brings up a replacement incarnation: respawn,
/// then the same handshake the boot gave it — but with `restart` set in
/// its plan, so it replays its journal before touching the mesh, unlinks
/// its stale socket, and rebinds its original address for the peers'
/// re-dial to find. Blocks the phase loop for the handshake's duration
/// (children are autonomous post-`GO`; only the event queue waits).
#[allow(clippy::too_many_arguments)]
fn restart_node(
    kill: &KillSpec,
    wal_dir: Option<&Path>,
    plan: &NodePlan,
    opts: &NetOptions,
    boot_addr: &str,
    token: &str,
    listener: &Listener,
    mesh_addrs: &[String],
    deadline: Instant,
    children: &mut Children,
    writers: &mut [Conn],
    tx: &mpsc::Sender<(usize, Event)>,
) -> Result<std::thread::JoinHandle<()>, BootstrapError> {
    let prog = kill.prog;
    if let Some(mut c) = children.0[prog].take() {
        let _ = c.kill();
        let _ = c.wait();
    }
    if kill.corrupt_wal {
        let dir = wal_dir.ok_or_else(|| {
            BootstrapError::Plan("corrupt_wal chaos without a journal directory".into())
        })?;
        corrupt_wal(dir, prog)?;
    }

    children.0[prog] = Some(spawn_node(opts, boot_addr, token, prog, None)?);
    let conn = loop {
        match listener.accept() {
            Ok(c) => break c,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(BootstrapError::Timeout("restart accept"));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e.into()),
        }
    };
    conn.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut writer = conn.try_clone()?;
    let mut reader = FrameReader::new(conn);
    let body = read_frame(&mut reader, codec::KIND_HELLO, "restart hello")?;
    let (version, peer_token, claimed) = codec::decode_hello(&body)
        .map_err(|e| BootstrapError::Wire(format!("restart hello: {e}")))?;
    if version != codec::RT_VERSION || peer_token != token || claimed != prog {
        let _ = writer.write_all(&codec::encode_fatal("bad restart hello"));
        return Err(BootstrapError::Wire(
            "restarted node presented a bad hello".into(),
        ));
    }
    let mut rp = plan.clone();
    rp.restart = true;
    writer.write_all(&codec::encode_plan(&rp))?;
    // The node reports its (re-bound, unchanged) mesh address; peers
    // re-dial the original one, so it is only read to advance the
    // handshake — and to surface a FATAL if the journal was unreadable.
    let body = read_frame(&mut reader, codec::KIND_LISTENING, "restart listening")?;
    codec::decode_listening(&body)
        .map_err(|e| BootstrapError::Wire(format!("restart listening: {e}")))?;
    writer.write_all(&codec::encode_peers(mesh_addrs))?;
    read_frame(&mut reader, codec::KIND_READY, "restart ready")?;
    writer.write_all(&codec::encode_bare(codec::KIND_GO))?;
    reader.conn().set_read_timeout(None)?;
    writers[prog] = writer;
    let tx = tx.clone();
    std::thread::Builder::new()
        .name(format!("couplink-boot-rd-{prog}-r"))
        .spawn(move || reader_loop(prog, reader, tx))
        .map_err(|e| BootstrapError::Spawn(format!("reader thread: {e}")))
}

/// Flips one byte early in the oldest journal segment of `prog`: a
/// mid-file record stops checksumming, which the reopened WAL must report
/// as corruption — never silently skip or truncate.
fn corrupt_wal(wal_dir: &Path, prog: usize) -> Result<(), BootstrapError> {
    let prefix = format!("node-{prog}.");
    let mut segs: Vec<PathBuf> = std::fs::read_dir(wal_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|f| f.to_str())
                .is_some_and(|f| f.starts_with(&prefix) && f.ends_with(".wal"))
        })
        .collect();
    segs.sort();
    let Some(path) = segs.first() else {
        return Err(BootstrapError::Io(io::Error::other(
            "no journal segment to corrupt",
        )));
    };
    let mut bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        return Err(BootstrapError::Io(io::Error::other(
            "journal segment is empty",
        )));
    }
    // First body byte of the first record (the frame header is 12 bytes) —
    // guaranteed mid-file as long as the journal holds more than one
    // record, so truncation is never a legal response.
    let at = 12.min(bytes.len() - 1);
    bytes[at] ^= 0x40;
    std::fs::write(path, &bytes)?;
    Ok(())
}

fn merge(conns: usize, reports: Vec<Option<NodeReport>>) -> NetReport {
    let mut out = NetReport {
        stats: (0..conns).map(|_| Vec::new()).collect(),
        traces: Vec::new(),
        matches: (0..conns).map(|_| Vec::new()).collect(),
        imports_done: Vec::new(),
        export_errors: Vec::new(),
        shutdown_errors: Vec::new(),
        crashed: Vec::new(),
        counters: zero_counters(),
        process_counters: Vec::with_capacity(reports.len()),
    };
    for (prog, slot) in reports.into_iter().enumerate() {
        let Some(rep) = slot else {
            out.crashed.push(prog);
            out.process_counters.push(zero_counters());
            continue;
        };
        for (conn, per_rank) in rep.stats {
            let c = conn as usize;
            if c < conns && !per_rank.is_empty() {
                out.stats[c] = per_rank;
            }
        }
        for (p, r, c, t) in rep.traces {
            out.traces.push((p, r, ConnectionId(c), t));
        }
        for (conn, got) in rep.matches {
            let c = conn as usize;
            if c < conns {
                out.matches[c] = got.into_iter().map(|m| m.map(ts)).collect();
            }
        }
        out.imports_done.extend(rep.imports_done);
        out.export_errors.extend(rep.export_errors);
        if let Some(e) = rep.shutdown_error {
            out.shutdown_errors.push((prog, e));
        }
        out.counters.merge_process(&rep.counters);
        out.process_counters.push(rep.counters);
    }
    out
}

/// Removes the session's socket directory on drop — sockets are unlinked
/// even when bootstrap errors out halfway.
struct DirCleanup(PathBuf);

impl Drop for DirCleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A map from program name to index, handy for plan construction.
pub fn program_indices(plan: &NodePlan) -> Result<HashMap<String, usize>, BootstrapError> {
    let topo = plan.topology().map_err(BootstrapError::Plan)?;
    Ok(topo
        .programs
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.clone(), i))
        .collect())
}
