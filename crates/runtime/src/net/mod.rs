//! Socket transport: each coupled program as its own OS process.
//!
//! The in-process runtimes (DES and threaded) share one protocol engine;
//! this module puts that same engine behind real sockets. A parent
//! orchestrator ([`bootstrap::run_plan`]) spawns one `couplink-node`
//! process per program, walks them through a versioned, token-checked
//! handshake, and hands each a [`codec::NodePlan`] from which every
//! process independently rebuilds the *same* validated topology. The
//! nodes then form a full socket mesh (UDS or TCP, one socket per program
//! pair) and run a *partial* fabric session — only their own program's
//! ranks, reps, and stores exist locally; everything foreign travels as
//! length-prefixed, checksummed frames ([`couplink_proto::wire`]).
//!
//! Only four message families ever cross the wire — import requests,
//! collective answers, their acks, and payload pieces — because the
//! collective semantics of export/import already concentrate all
//! inter-program coupling in the rep/agent protocol. Reliability
//! (retransmit, failover, buddy-help) runs unchanged on top; TCP's
//! in-order delivery is treated as a fast path, not a correctness
//! assumption.
//!
//! Submodules: [`link`] (backends, framing, writer threads), [`codec`]
//! (runtime envelopes and the bootstrap vocabulary), [`node`] (the child
//! process), [`bootstrap`] (the parent).

pub mod bootstrap;
pub mod codec;
pub mod link;
pub mod node;
pub mod wal;

pub use bootstrap::{run_plan, BootstrapError, KillSpec, NetOptions, NetReport};
pub use codec::{ExportSpec, ImportSpec, NodeFault, NodePlan, NodeReport};
pub use link::{Addr, NetError, SocketBackend};
pub use node::{node_main, NodeArgs};
pub use wal::{FileWal, WalError};

use std::path::PathBuf;

/// Locates the `couplink-node` binary for callers outside `cargo test`'s
/// own crate (where `env!("CARGO_BIN_EXE_...")` is unavailable): honours
/// `COUPLINK_NODE_BIN`, then looks next to the current executable
/// (popping a trailing `deps` directory, which is where test binaries
/// live). Returns `None` when no candidate exists.
pub fn default_node_bin() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("COUPLINK_NODE_BIN") {
        let p = PathBuf::from(p);
        return p.exists().then_some(p);
    }
    let mut dir = std::env::current_exe().ok()?;
    dir.pop();
    if dir.file_name().is_some_and(|n| n == "deps") {
        dir.pop();
    }
    let candidate = dir.join("couplink-node");
    candidate.exists().then_some(candidate)
}
