//! Runtimes that drive the `couplink-proto` state machines.
//!
//! The protocol layer is sans-IO; this crate supplies the two environments it
//! runs in:
//!
//! * [`des`] — a deterministic single-threaded **discrete-event simulator**
//!   with a virtual clock and a calibrated [`cost::CostModel`] (memcpy
//!   bandwidth, control-message latency, network bandwidth). This is how the
//!   paper's figures are regenerated exactly and repeatably: the same
//!   configuration always produces the same per-iteration export-time
//!   series.
//! * [`threaded`] — an in-process **multi-program fabric**: every simulated
//!   process is an OS thread, every program has a rep thread, messages move
//!   over crossbeam channels, and buffering performs *real* memcpys of real
//!   `f64` arrays. This is what the examples and the Criterion benches use;
//!   it exhibits the paper's timing races on real hardware.
//! * [`net`] — the **socket transport**: each program is its own OS process
//!   (the `couplink-node` binary), coupled over UDS or loopback TCP with the
//!   `couplink-proto` wire codec. Each process hosts a *partial* threaded
//!   session; only import requests, collective answers, acks, and payload
//!   pieces cross the wire.
//!
//! Both runtimes implement the same protocol flow (§4 of the paper):
//! importer processes make collective `import` calls through their rep; the
//! exporter rep forwards each request to every exporter process, aggregates
//! the collective responses, answers the importer, and (optionally) sends
//! buddy-help to the PENDING processes. That flow is implemented **once**,
//! in [`engine`], as runtime-agnostic nodes exchanging messages over a
//! [`engine::Transport`]; the two runtimes are thin drivers moving those
//! messages — the simulator through its event queue with modelled
//! latencies, the fabric over real channels. Both accept arbitrary
//! multi-program topologies ([`engine::Topology`]), not just a single
//! exporter→importer pair.

#![warn(missing_docs)]

pub mod cost;
pub mod des;
pub mod engine;
pub mod net;
pub mod threaded;

pub use cost::CostModel;
pub use des::coupled::{ActionKind, CoupledConfig, CoupledReport, CoupledSim, Schedule};
pub use des::topo::{
    ExportSchedule, ExportSeries, ImportSchedule, TopoReport, TopologyConfig, TopologySim,
};
pub use engine::{
    ChaosConfig, ChaosState, CrashFault, CrashTarget, OracleViolation, Reliability, RetryPolicy,
    Topology, TopologyError,
};
pub use threaded::{
    session_task_count, CoupledPair, ExecutorOptions, ExportAccess, ExporterHandle, Fabric,
    FabricOptions, FabricReport, ImportAccess, ImporterHandle, PairConfig, SessionSet,
    ThreadedError,
};
