//! The reliability layer: sequence numbers, acks, timeouts and bounded
//! exponential-backoff retransmit over unreliable links.
//!
//! PR 2's chaos layer healed its own drops inside the transport wrapper —
//! the protocol never saw a fault. This module moves recovery where it
//! belongs: every sequenced control message stays *pending* at its sender
//! until the receiver acknowledges it, and an expired ack deadline
//! retransmits it with exponential backoff. Both runtimes drive the same
//! state machine through the [`Clock`](super::Clock) abstraction: the
//! discrete-event simulator feeds virtual time and schedules a retry-check
//! event at [`Reliability::next_deadline`]; the threaded fabric feeds wall
//! time from its relay thread.
//!
//! # Delivery disciplines
//!
//! Messages fall into four disciplines, matching the chaos class analysis
//! ([`super::chaos`]):
//!
//! * **Ordered + reliable** — the FIFO class (`ImportCall`,
//!   `ImportRequest`, `ForwardRequest`). Each carries an ordered-substream
//!   index (`ord`) per directed link; the receiver delivers strictly in
//!   `ord` order, holding back early arrivals, so a retransmitted gap can
//!   never be overtaken (the strictly-increasing-timestamp invariants
//!   survive permanent loss).
//! * **Unordered + reliable** — `Response`, `Answer`, `AnswerBcast`.
//!   Sequenced for dedup and retransmit but delivered on arrival.
//! * **Unordered + expendable** — `BuddyHelp`. The announcement is *only*
//!   an optimization: losing it costs a memcpy, never correctness. It gets
//!   a small retry budget ([`RetryPolicy::expendable_attempts`]) and is
//!   then abandoned, metered as `degraded_buffers` — the graceful
//!   degradation to pre-optimization buffering.
//! * **Link layer** — `Ack`, `Heartbeat`. Never sequenced (an ack of an
//!   ack would regress infinitely); idempotent by construction instead, so
//!   best-effort delivery suffices: a lost ack is healed by the original
//!   sender's retransmit, which the receiver dedups and re-acks.
//!
//! # The ack-on-delivery invariant
//!
//! A message is acknowledged exactly when it is **delivered to its node**
//! (processed and journaled), not when it reaches the endpoint's mailbox.
//! Held-back ordered messages are therefore unacked and keep being
//! retransmitted until their gap fills; a rep that crashes loses only
//! unacked messages, which senders retransmit to its successor. Journal =
//! processed = acked is what makes crash recovery exact (see
//! `DESIGN.md`, "Fault model & recovery").
//!
//! # Liveness
//!
//! Under per-attempt loss probability `p < 1`, independent seeded draws
//! make eventual delivery certain; backoff is capped
//! ([`RetryPolicy::max_timeout`]) so retry intervals stay bounded. The
//! attempt cap for reliable traffic is a backstop far beyond any plausible
//! loss run (`0.2^32`), turning a would-be infinite loop into a metered
//! abandonment the liveness oracle then reports.

use super::{chaos, Endpoint};
use couplink_metrics::EngineMetrics;
use couplink_proto::CtrlMsg;
use couplink_time::Timestamp;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Timeout/backoff parameters of the reliability layer, in clock seconds
/// (virtual on the simulator, scaled wall on the fabric).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// First ack deadline after a send.
    pub base_timeout: f64,
    /// Deadline multiplier per retransmit (exponential backoff).
    pub backoff: f64,
    /// Backoff cap: no retry interval exceeds this.
    pub max_timeout: f64,
    /// Attempt cap for reliable traffic (liveness backstop, never reached
    /// under the fault model's loss rates).
    pub max_attempts: u32,
    /// Attempt cap for expendable traffic (buddy-help), after which the
    /// announcement is abandoned and metered as a degraded buffer.
    pub expendable_attempts: u32,
    /// Whether expired deadlines retransmit at all. `false` only in
    /// negative tests proving the liveness oracle fires without recovery.
    pub retransmit: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_timeout: 0.5,
            backoff: 2.0,
            max_timeout: 2.0,
            max_attempts: 32,
            expendable_attempts: 3,
            retransmit: true,
        }
    }
}

impl RetryPolicy {
    /// The retry interval after `attempt` sends (capped exponential).
    pub fn interval(&self, attempt: u32) -> f64 {
        (self.base_timeout * self.backoff.powi(attempt.min(30) as i32)).min(self.max_timeout)
    }
}

/// Whether a message rides the expendable discipline (bounded retries,
/// abandoned rather than guaranteed).
pub fn expendable(msg: &CtrlMsg) -> bool {
    matches!(
        msg,
        CtrlMsg::BuddyHelp { .. }
            | CtrlMsg::Coalesced {
                help: true,
                bcast: false,
                ..
            }
    )
}

/// Per-message wire metadata added by the reliability layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireMeta {
    /// The sending endpoint (acks go back here).
    pub from: Endpoint,
    /// Link-unique sequence number (dedup + ack key).
    pub seq: u64,
    /// Position in the link's ordered substream, for FIFO-class messages.
    pub ord: Option<u64>,
}

/// What an expired deadline turned into.
#[derive(Debug, Clone, PartialEq)]
pub enum Expiry {
    /// Retransmit this copy (same meta: retransmits keep their seq).
    Resend {
        /// Destination endpoint.
        to: Endpoint,
        /// Original wire metadata.
        meta: WireMeta,
        /// The message.
        msg: CtrlMsg,
    },
    /// The send was abandoned (expendable budget exhausted, reliable-cap
    /// backstop hit, or retransmit disabled).
    Abandon {
        /// Destination endpoint.
        to: Endpoint,
        /// The message given up on.
        msg: CtrlMsg,
        /// Whether it was expendable (a metered degradation) rather than a
        /// reliable send (a liveness loss).
        expendable: bool,
    },
}

/// What receiving one wire packet produced.
#[derive(Debug, Default, PartialEq)]
pub struct Received {
    /// Messages now deliverable to the node, in delivery order, each with
    /// the metadata to journal.
    pub deliver: Vec<(WireMeta, CtrlMsg)>,
    /// Sequence numbers to ack back to the sender (includes re-acks of
    /// duplicates whose first ack was lost).
    pub acks: Vec<u64>,
}

/// One record of the sequenced-message journal.
///
/// The journal is the recovery substrate of the ack-on-delivery invariant:
/// a message is acked exactly when it has been processed *and* journaled,
/// so replaying the journal in order reconstructs every consumer's state.
/// Two record kinds cover both recovery paths:
///
/// * [`Delivered`](WalRecord::Delivered) — a sequenced control message was
///   delivered (processed, journaled, acked) at an endpoint. Replay
///   re-injects it through the normal delivery path, which rebuilds node
///   state, receive-side dedup/ordering state and the metrics it metered.
/// * [`AppExport`](WalRecord::AppExport) — an application export call
///   completed at a rank. Export *data* is not logged: couplink payloads
///   are deterministic functions of `(timestamp, region)`, so replay
///   regenerates them and only the schedule position must be durable.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A sequenced control message delivered at `ep`.
    Delivered {
        /// The consuming endpoint.
        ep: Endpoint,
        /// The wire metadata to journal (dedup + ordering state).
        meta: WireMeta,
        /// The message itself.
        msg: CtrlMsg,
    },
    /// An application export completed at rank endpoint `ep`.
    AppExport {
        /// The exporting rank's endpoint.
        ep: Endpoint,
        /// The export region index within the program's owned layout.
        region: u32,
        /// The export timestamp.
        ts: Timestamp,
    },
}

/// The pluggable write-ahead journal behind the reliability layer.
///
/// The DES and the fault-free threaded fabric use [`MemWal`] — exactly the
/// per-endpoint `Vec` journal the in-process crash recovery has always
/// replayed, so clean runs stay bit-identical. `couplink-node` plugs in a
/// file-backed implementation (`net::wal::FileWal`) whose records survive
/// SIGKILL: the restarted process replays them to rebuild its half of the
/// session. Implementations may panic on unrecoverable I/O errors — a
/// durability layer that cannot write is a dead process, not a degraded
/// one.
pub trait Wal: Send {
    /// Journals one record.
    fn append(&mut self, rec: &WalRecord);

    /// Makes every appended record durable. Called before a sequenced
    /// frame or ack escapes the process (no-op for the in-memory backend);
    /// implementations batch — many appends per sync.
    fn sync(&mut self);

    /// The delivered-message journal of one endpoint, in delivery order —
    /// what crash recovery replays into the successor.
    fn delivered(&self, ep: Endpoint) -> Vec<(WireMeta, CtrlMsg)>;

    /// Discards journal history that can no longer be needed for replay.
    /// Only call once the session is past needing recovery (clean
    /// shutdown); a no-op for backends without retained storage.
    fn prune(&mut self) {}
}

/// The in-memory journal backend: per-endpoint delivery logs, no
/// durability. Semantically identical to the `Vec<(WireMeta, CtrlMsg)>`
/// journals the in-process failover replay has used since PR 4.
#[derive(Debug, Default)]
pub struct MemWal {
    delivered: BTreeMap<Endpoint, Vec<(WireMeta, CtrlMsg)>>,
}

impl MemWal {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Wal for MemWal {
    fn append(&mut self, rec: &WalRecord) {
        // Export schedule positions only matter to a durable backend (an
        // in-process failover never loses the app threads).
        if let WalRecord::Delivered { ep, meta, msg } = rec {
            self.delivered.entry(*ep).or_default().push((*meta, *msg));
        }
    }

    fn sync(&mut self) {}

    fn delivered(&self, ep: Endpoint) -> Vec<(WireMeta, CtrlMsg)> {
        self.delivered.get(&ep).cloned().unwrap_or_default()
    }
}

#[derive(Debug)]
struct PendingSend {
    to: Endpoint,
    msg: CtrlMsg,
    ord: Option<u64>,
    deadline: f64,
    attempt: u32,
}

#[derive(Debug, Default)]
struct SendLink {
    next_seq: u64,
    next_ord: u64,
    pending: BTreeMap<u64, PendingSend>,
}

#[derive(Debug, Default)]
struct RecvLink {
    /// Seqs already delivered to the node (acked); re-ack on sight.
    delivered: std::collections::BTreeSet<u64>,
    /// Next ordered-substream index the node may consume.
    next_ord: u64,
    /// Early ordered arrivals, keyed by `ord`, holding `(seq, msg)`.
    holdback: BTreeMap<u64, (u64, CtrlMsg)>,
}

/// The reliability state machine for one run: per-directed-link sender and
/// receiver state. All iteration is over `BTreeMap`s so every operation is
/// deterministic given the same call sequence.
#[derive(Debug)]
pub struct Reliability {
    policy: RetryPolicy,
    send: BTreeMap<(Endpoint, Endpoint), SendLink>,
    recv: BTreeMap<(Endpoint, Endpoint), RecvLink>,
    metrics: Arc<EngineMetrics>,
}

impl Reliability {
    /// A fresh layer with the given policy, metering into `metrics`.
    pub fn new(policy: RetryPolicy, metrics: Arc<EngineMetrics>) -> Self {
        Reliability {
            policy,
            send: BTreeMap::new(),
            recv: BTreeMap::new(),
            metrics,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Registers an outbound message on the link `from → to`, assigning its
    /// sequence number and first ack deadline. Returns `None` for
    /// link-layer messages, which ride unsequenced.
    pub fn register(
        &mut self,
        from: Endpoint,
        to: Endpoint,
        msg: &CtrlMsg,
        now: f64,
    ) -> Option<WireMeta> {
        if msg.is_link_layer() {
            return None;
        }
        let link = self.send.entry((from, to)).or_default();
        let seq = link.next_seq;
        link.next_seq += 1;
        let ord = (!chaos::commutes(msg)).then(|| {
            let o = link.next_ord;
            link.next_ord += 1;
            o
        });
        link.pending.insert(
            seq,
            PendingSend {
                to,
                msg: *msg,
                ord,
                deadline: now + self.policy.interval(0),
                attempt: 1,
            },
        );
        Some(WireMeta { from, seq, ord })
    }

    /// Processes an ack for `seq` on the link `sender → acker`. Returns
    /// whether the ack was fresh; a duplicate ack is a no-op (idempotent).
    pub fn on_ack(&mut self, sender: Endpoint, acker: Endpoint, seq: u64) -> bool {
        self.send
            .get_mut(&(sender, acker))
            .map(|l| l.pending.remove(&seq).is_some())
            .unwrap_or(false)
    }

    /// Processes one arriving wire packet addressed to `to`. Applies dedup
    /// and ordered hold-back; everything in [`Received::deliver`] must be
    /// journaled and handed to the node, and every seq in
    /// [`Received::acks`] acked back to `meta.from`.
    pub fn receive(&mut self, meta: WireMeta, to: Endpoint, msg: CtrlMsg) -> Received {
        let link = self.recv.entry((meta.from, to)).or_default();
        let mut out = Received::default();
        if link.delivered.contains(&meta.seq) {
            // Already processed; the original ack was lost. Re-ack only.
            out.acks.push(meta.seq);
            return out;
        }
        match meta.ord {
            None => {
                link.delivered.insert(meta.seq);
                out.acks.push(meta.seq);
                out.deliver.push((meta, msg));
            }
            Some(k) => {
                // Idempotent overwrite: a retransmit of a held-back packet
                // carries the same (seq, ord).
                link.holdback.insert(k, (meta.seq, msg));
                while let Some((seq, m)) = link.holdback.remove(&link.next_ord) {
                    let dm = WireMeta {
                        from: meta.from,
                        seq,
                        ord: Some(link.next_ord),
                    };
                    link.delivered.insert(seq);
                    link.next_ord += 1;
                    out.acks.push(seq);
                    out.deliver.push((dm, m));
                }
            }
        }
        out
    }

    /// All sends whose ack deadline expired at `now`: retransmits (with
    /// their deadline pushed out by capped exponential backoff) and
    /// abandonments. Each expiry counts one `timeouts`; each resend one
    /// `retransmits`; each expendable abandonment one `degraded_buffers`.
    pub fn due(&mut self, now: f64) -> Vec<Expiry> {
        let mut out = Vec::new();
        for (&(from, _to), link) in self.send.iter_mut() {
            let expired: Vec<u64> = link
                .pending
                .iter()
                .filter(|(_, p)| p.deadline <= now)
                .map(|(&s, _)| s)
                .collect();
            for seq in expired {
                self.metrics.timeouts.inc();
                let p = link.pending.get_mut(&seq).expect("expired seq pending");
                let cap = if expendable(&p.msg) {
                    self.policy.expendable_attempts
                } else {
                    self.policy.max_attempts
                };
                if !self.policy.retransmit || p.attempt >= cap {
                    let p = link.pending.remove(&seq).expect("expired seq pending");
                    let exp = expendable(&p.msg);
                    if exp {
                        self.metrics.degraded_buffers.inc();
                    }
                    out.push(Expiry::Abandon {
                        to: p.to,
                        msg: p.msg,
                        expendable: exp,
                    });
                } else {
                    p.deadline = now + self.policy.interval(p.attempt);
                    p.attempt += 1;
                    self.metrics.retransmits.inc();
                    out.push(Expiry::Resend {
                        to: p.to,
                        meta: WireMeta {
                            from,
                            seq,
                            ord: p.ord,
                        },
                        msg: p.msg,
                    });
                }
            }
        }
        out
    }

    /// The earliest pending ack deadline, if any — when the runtime should
    /// next call [`Reliability::due`].
    pub fn next_deadline(&self) -> Option<f64> {
        self.send
            .values()
            .flat_map(|l| l.pending.values())
            .map(|p| p.deadline)
            .fold(None, |acc, d| {
                Some(acc.map_or(d, |a: f64| if d < a { d } else { a }))
            })
    }

    /// Number of sends still awaiting an ack.
    pub fn pending_len(&self) -> usize {
        self.send.values().map(|l| l.pending.len()).sum()
    }

    /// Crashes endpoint `ep` as a receiver: its receive-side link state
    /// (dedup sets, hold-back buffers) dies with it. Held-back messages
    /// were never acked, so their senders keep retransmitting them to the
    /// successor. Send-side state *out of* `ep` is preserved: the successor
    /// replays the consumed-message journal, which deterministically
    /// regenerates the same outbound traffic, so keeping the pending map is
    /// equivalent to the successor re-deriving it.
    pub fn crash_endpoint(&mut self, ep: Endpoint) {
        self.recv.retain(|&(_, to), _| to != ep);
    }

    /// Fast-forwards every send link's sequence counter by `gap` — the
    /// last step of a restarted process's journal replay.
    ///
    /// Replay rebuilds send counters by regenerating outbound traffic,
    /// but regeneration is not count-exact: timing-dependent messages the
    /// first incarnation sent (pending-response updates as exports
    /// trickled in, buddy-help) are not reproduced when replay re-decides
    /// with full export knowledge, so the rebuilt counter can lag the
    /// pre-crash one. A lagging counter would hand a *fresh* post-restart
    /// send a sequence number its peer has already seen — and the peer's
    /// dedup would silently swallow a brand-new message. Jumping far past
    /// anything the previous incarnation can have sent keeps fresh sends
    /// fresh. Ordered-substream (`ord`) counters are deliberately
    /// untouched: the FIFO message classes are one-per-request and
    /// regenerate exactly, and a skipped `ord` would stall the receiver's
    /// hold-back forever.
    pub fn fast_forward_seqs(&mut self, gap: u64) {
        for link in self.send.values_mut() {
            link.next_seq += gap;
        }
    }

    /// Rebuilds `ep`'s receive-side dedup/ordering state from the journaled
    /// metadata of every message it had consumed before the crash — the
    /// successor's re-announcement step. After this, retransmits of
    /// already-journaled messages are re-acked instead of re-processed.
    pub fn restore_delivered(&mut self, ep: Endpoint, journal: &[WireMeta]) {
        for meta in journal {
            let link = self.recv.entry((meta.from, ep)).or_default();
            link.delivered.insert(meta.seq);
            if let Some(k) = meta.ord {
                link.next_ord = link.next_ord.max(k + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use couplink_proto::{ConnectionId, ProcResponse, Rank, RepAnswer, RequestId};
    use couplink_time::ts;

    const EXP: Endpoint = Endpoint::Proc { prog: 0, rank: 0 };
    const REP: Endpoint = Endpoint::Rep { prog: 0 };

    fn fwd(req: u64) -> CtrlMsg {
        CtrlMsg::ForwardRequest {
            conn: ConnectionId(0),
            req: RequestId(req),
            ts: ts(10.0 + req as f64),
        }
    }

    fn resp(req: u64) -> CtrlMsg {
        CtrlMsg::Response {
            conn: ConnectionId(0),
            req: RequestId(req),
            rank: Rank(0),
            resp: ProcResponse::NoMatch,
        }
    }

    fn help(req: u64) -> CtrlMsg {
        CtrlMsg::BuddyHelp {
            conn: ConnectionId(0),
            req: RequestId(req),
            answer: RepAnswer::NoMatch,
        }
    }

    fn layer() -> Reliability {
        Reliability::new(RetryPolicy::default(), Arc::new(EngineMetrics::new()))
    }

    #[test]
    fn ack_clears_pending_and_duplicate_ack_is_noop() {
        let mut r = layer();
        let meta = r.register(REP, EXP, &fwd(0), 0.0).expect("sequenced");
        assert_eq!(r.pending_len(), 1);
        assert!(r.on_ack(REP, EXP, meta.seq), "first ack is fresh");
        assert_eq!(r.pending_len(), 0);
        // The idempotence the chaos layer relies on to duplicate acks.
        assert!(!r.on_ack(REP, EXP, meta.seq), "duplicate ack is a no-op");
        assert_eq!(r.pending_len(), 0);
    }

    #[test]
    fn link_layer_messages_are_never_sequenced() {
        let mut r = layer();
        assert_eq!(r.register(REP, EXP, &CtrlMsg::Ack { seq: 3 }, 0.0), None);
        assert_eq!(
            r.register(REP, EXP, &CtrlMsg::Heartbeat { beat: 1 }, 0.0),
            None
        );
        assert_eq!(r.pending_len(), 0);
    }

    #[test]
    fn receiver_dedups_and_reacks() {
        let mut r = layer();
        let meta = r.register(EXP, REP, &resp(0), 0.0).unwrap();
        let first = r.receive(meta, REP, resp(0));
        assert_eq!(first.deliver.len(), 1);
        assert_eq!(first.acks, vec![meta.seq]);
        let dup = r.receive(meta, REP, resp(0));
        assert!(dup.deliver.is_empty(), "duplicate must not re-process");
        assert_eq!(dup.acks, vec![meta.seq], "but must re-ack");
    }

    #[test]
    fn ordered_messages_hold_back_until_the_gap_fills() {
        let mut r = layer();
        let m0 = r.register(REP, EXP, &fwd(0), 0.0).unwrap();
        let m1 = r.register(REP, EXP, &fwd(1), 0.0).unwrap();
        let m2 = r.register(REP, EXP, &fwd(2), 0.0).unwrap();
        assert_eq!((m0.ord, m1.ord, m2.ord), (Some(0), Some(1), Some(2)));
        // 2 and 1 arrive early: held back, unacked.
        assert_eq!(r.receive(m2, EXP, fwd(2)), Received::default());
        assert_eq!(r.receive(m1, EXP, fwd(1)), Received::default());
        // 0 arrives: all three deliver in order, all three acked.
        let got = r.receive(m0, EXP, fwd(0));
        let msgs: Vec<CtrlMsg> = got.deliver.iter().map(|(_, m)| *m).collect();
        assert_eq!(msgs, vec![fwd(0), fwd(1), fwd(2)]);
        assert_eq!(got.acks, vec![m0.seq, m1.seq, m2.seq]);
        // A retransmit of the held-back packet after delivery just re-acks.
        assert_eq!(r.receive(m1, EXP, fwd(1)).acks, vec![m1.seq]);
    }

    #[test]
    fn unordered_and_ordered_substreams_are_independent() {
        let mut r = layer();
        let mf = r.register(EXP, REP, &fwd(0), 0.0).unwrap();
        let mr = r.register(EXP, REP, &resp(0), 0.0).unwrap();
        assert_eq!(mr.ord, None);
        // The response must not wait behind the lost forward.
        let got = r.receive(mr, REP, resp(0));
        assert_eq!(got.deliver.len(), 1);
        let got = r.receive(mf, REP, fwd(0));
        assert_eq!(got.deliver.len(), 1);
    }

    #[test]
    fn expired_sends_retransmit_with_backoff_then_reliable_cap_holds() {
        let m = Arc::new(EngineMetrics::new());
        let mut r = Reliability::new(
            RetryPolicy {
                base_timeout: 1.0,
                backoff: 2.0,
                max_timeout: 4.0,
                max_attempts: 3,
                ..RetryPolicy::default()
            },
            m.clone(),
        );
        r.register(REP, EXP, &fwd(0), 0.0).unwrap();
        assert!(r.due(0.5).is_empty(), "deadline not reached");
        // t=1: first expiry retransmits, next interval 2s (backoff).
        let e = r.due(1.0);
        assert!(matches!(e[..], [Expiry::Resend { .. }]), "{e:?}");
        assert_eq!(r.next_deadline(), Some(3.0));
        // t=3: second retransmit, interval now capped at 4s.
        let e = r.due(3.0);
        assert!(matches!(e[..], [Expiry::Resend { .. }]));
        assert_eq!(r.next_deadline(), Some(7.0));
        // t=7: attempt cap reached — reliable abandon (the backstop).
        let e = r.due(7.0);
        assert!(
            matches!(
                e[..],
                [Expiry::Abandon {
                    expendable: false,
                    ..
                }]
            ),
            "{e:?}"
        );
        assert_eq!(r.pending_len(), 0);
        let snap = m.snapshot().counters;
        assert_eq!(snap.timeouts, 3);
        assert_eq!(snap.retransmits, 2);
        assert_eq!(
            snap.degraded_buffers, 0,
            "reliable abandon is not degradation"
        );
    }

    #[test]
    fn abandoned_buddy_help_is_metered_as_degradation() {
        let m = Arc::new(EngineMetrics::new());
        let mut r = Reliability::new(
            RetryPolicy {
                base_timeout: 1.0,
                backoff: 1.0,
                expendable_attempts: 2,
                ..RetryPolicy::default()
            },
            m.clone(),
        );
        r.register(REP, EXP, &help(0), 0.0).unwrap();
        assert!(matches!(r.due(1.0)[..], [Expiry::Resend { .. }]));
        let e = r.due(2.0);
        assert!(
            matches!(
                e[..],
                [Expiry::Abandon {
                    expendable: true,
                    ..
                }]
            ),
            "{e:?}"
        );
        assert_eq!(m.snapshot().counters.degraded_buffers, 1);
        assert_eq!(m.snapshot().counters.retransmits, 1);
    }

    /// With retransmit disabled (the negative-test knob), expiry abandons
    /// immediately: the protocol has no recovery and liveness is forfeit.
    #[test]
    fn disabled_retransmit_abandons_on_first_expiry() {
        let mut r = Reliability::new(
            RetryPolicy {
                retransmit: false,
                base_timeout: 1.0,
                ..RetryPolicy::default()
            },
            Arc::new(EngineMetrics::new()),
        );
        r.register(REP, EXP, &fwd(0), 0.0).unwrap();
        assert!(matches!(r.due(1.0)[..], [Expiry::Abandon { .. }]));
        assert_eq!(r.pending_len(), 0);
    }

    /// The in-memory WAL is the journal the failover replay has always
    /// used: per-endpoint delivery logs in order, export records ignored.
    #[test]
    fn mem_wal_journals_deliveries_per_endpoint() {
        let mut w = MemWal::new();
        let m0 = WireMeta {
            from: EXP,
            seq: 0,
            ord: Some(0),
        };
        let m1 = WireMeta {
            from: EXP,
            seq: 1,
            ord: None,
        };
        w.append(&WalRecord::Delivered {
            ep: REP,
            meta: m0,
            msg: fwd(0),
        });
        w.append(&WalRecord::AppExport {
            ep: EXP,
            region: 0,
            ts: ts(1.0),
        });
        w.append(&WalRecord::Delivered {
            ep: REP,
            meta: m1,
            msg: resp(0),
        });
        w.sync();
        assert_eq!(w.delivered(REP), vec![(m0, fwd(0)), (m1, resp(0))]);
        assert_eq!(w.delivered(EXP), vec![], "exports are not deliveries");
    }

    /// Crash + journal replay: the successor re-acks everything the dead
    /// rep had consumed and resumes the ordered substream where it left
    /// off, while held-back (unacked) messages are genuinely lost and wait
    /// for retransmission.
    #[test]
    fn crash_recovery_restores_dedup_and_order_state() {
        let mut r = layer();
        let m0 = r.register(EXP, REP, &fwd(0), 0.0).unwrap();
        let m1 = r.register(EXP, REP, &fwd(1), 0.0).unwrap();
        let m2 = r.register(EXP, REP, &fwd(2), 0.0).unwrap();
        let mut journal = Vec::new();
        for (meta, msg) in [(m0, fwd(0)), (m1, fwd(1))] {
            for (dm, _) in r.receive(meta, REP, msg).deliver {
                journal.push(dm);
            }
        }
        // m2 arrives but the rep crashes before consuming anything more:
        // pretend it was held back... it is ord 2 == next_ord, so it WOULD
        // deliver; crash first instead.
        r.crash_endpoint(REP);
        r.restore_delivered(REP, &journal);
        // Retransmit of journaled m1: re-acked, not re-processed.
        let got = r.receive(m1, REP, fwd(1));
        assert!(got.deliver.is_empty());
        assert_eq!(got.acks, vec![m1.seq]);
        // m2 (never journaled) now delivers in order.
        let got = r.receive(m2, REP, fwd(2));
        assert_eq!(got.deliver.len(), 1);
        assert_eq!(got.deliver[0].0.ord, Some(2));
    }
}
