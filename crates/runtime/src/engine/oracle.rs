//! End-to-end correctness oracles for the coupling protocol.
//!
//! These checks consume only *observable* run artifacts — per-process
//! [`Trace`]s, per-connection match decisions, import completion — and
//! re-derive what the protocol promised from first principles. They are the
//! acceptance predicate of the simulation-testing harness
//! (`couplink-simtest`), but are exported from the runtime crate so any
//! integration test can assert them.
//!
//! Four oracles:
//!
//! 1. **Collective order** ([`check_collective_order`]): the paper's
//!    Property 1 — every process of an exporting program observes the same
//!    requests and performs the same sends, in the same order, regardless
//!    of runtime or timing. (The per-export `copied` flags legally differ;
//!    the *sequences* may not.)
//! 2. **Buffer safety** ([`check_buffer_safety`]): replays the match
//!    predicate ([`couplink_time::evaluate`]) over the full export history
//!    and requires that every ground-truth match was memcpy'd (never
//!    skipped by the pruning rule) and eventually sent — and that nothing
//!    else was sent. This is the oracle that catches an unsound
//!    acceptable-region pruning rule.
//! 3. **Liveness** ([`check_liveness`]): every scheduled import call
//!    resolves and the importer finishes, i.e. bounded chaos (delay,
//!    duplication, drop-with-retry) never wedges the protocol.
//! 4. **Runtime equivalence** ([`check_runtime_equivalence`]): the
//!    discrete-event simulator and the threaded fabric decide identical
//!    match outcomes for the same scenario.
//! 5. **Metric consistency** ([`check_metric_consistency`]): the engine's
//!    instrumentation counters obey their conservation laws and agree with
//!    the ground-truth replay — every export call either paid or skipped
//!    the memcpy, and the transfer count equals the owed matches derived by
//!    re-evaluating the match predicate over the full export history.
//! 6. **Control scaling** ([`check_ctrl_scaling`]): under hierarchical
//!    fan-out the rep's origin sends per collective are bounded by the
//!    tree's branching factor, and the origin/relay counters obey exact
//!    conservation laws that together prove every rank received every
//!    collective exactly once — through the tree, with no flat fan-out
//!    sneaking back in.
//!
//! Plus an inertness check, [`check_fault_free`]: a run configured without
//! permanent faults must never exercise the reliability machinery — zero
//! retransmits, timeouts, failovers, degraded buffers, acks and heartbeats.
//! This is how the harness proves fault tolerance is pay-as-you-go (the
//! fault-free fast path stays bit-identical to the pre-reliability engine).

use super::tree;
use couplink_metrics::{CounterSnapshot, CtrlClass};
use couplink_proto::{ConnectionId, Trace};
use couplink_time::{evaluate, ExportHistory, MatchPolicy, MatchResult, Timestamp, Tolerance};
use std::collections::BTreeSet;
use std::fmt;

/// A failed oracle: which property broke, on which connection, and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleViolation {
    /// Two ranks of the exporting program disagreed on a timing-independent
    /// sequence (Property 1).
    CollectiveOrder {
        /// The connection the traces belong to.
        conn: ConnectionId,
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// A ground-truth match was pruned, never sent, or a non-match was sent.
    BufferSafety {
        /// The connection whose history was replayed.
        conn: ConnectionId,
        /// Human-readable description of the unsound decision.
        detail: String,
    },
    /// An import call never resolved, or the importer never finished.
    Liveness {
        /// The connection that stalled.
        conn: ConnectionId,
        /// Human-readable description of the stall.
        detail: String,
    },
    /// The two runtimes decided different match outcomes.
    RuntimeEquivalence {
        /// The connection that diverged.
        conn: ConnectionId,
        /// Human-readable description of the divergence.
        detail: String,
    },
    /// An instrumentation counter disagreed with its conservation law or
    /// with the ground-truth replay.
    MetricConsistency {
        /// The connection the inconsistency was attributed to (run-wide
        /// conservation failures report the first checked connection).
        conn: ConnectionId,
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// Hierarchical fan-out broke its O(log N) control budget or a tree
    /// conservation law (a rank was skipped or served twice).
    CtrlScaling {
        /// The connection the excess was attributed to (run-wide
        /// conservation failures report the first checked connection).
        conn: ConnectionId,
        /// Human-readable description of the excess.
        detail: String,
    },
}

impl OracleViolation {
    /// The connection the violation occurred on.
    pub fn conn(&self) -> ConnectionId {
        match self {
            OracleViolation::CollectiveOrder { conn, .. }
            | OracleViolation::BufferSafety { conn, .. }
            | OracleViolation::Liveness { conn, .. }
            | OracleViolation::RuntimeEquivalence { conn, .. }
            | OracleViolation::MetricConsistency { conn, .. }
            | OracleViolation::CtrlScaling { conn, .. } => *conn,
        }
    }
}

impl fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleViolation::CollectiveOrder { conn, detail } => {
                write!(f, "collective-order violation on conn {}: {detail}", conn.0)
            }
            OracleViolation::BufferSafety { conn, detail } => {
                write!(f, "buffer-safety violation on conn {}: {detail}", conn.0)
            }
            OracleViolation::Liveness { conn, detail } => {
                write!(f, "liveness violation on conn {}: {detail}", conn.0)
            }
            OracleViolation::RuntimeEquivalence { conn, detail } => {
                write!(
                    f,
                    "runtime-equivalence violation on conn {}: {detail}",
                    conn.0
                )
            }
            OracleViolation::MetricConsistency { conn, detail } => {
                write!(
                    f,
                    "metric-consistency violation on conn {}: {detail}",
                    conn.0
                )
            }
            OracleViolation::CtrlScaling { conn, detail } => {
                write!(f, "ctrl-scaling violation on conn {}: {detail}", conn.0)
            }
        }
    }
}

/// Property 1: all ranks of the exporting program saw the same request
/// sequence and performed the same send sequence, in the same order.
///
/// Export sequences are *not* compared — they are fixed by each rank's
/// application schedule, not by the protocol.
pub fn check_collective_order(conn: ConnectionId, traces: &[Trace]) -> Result<(), OracleViolation> {
    let Some((first, rest)) = traces.split_first() else {
        return Ok(());
    };
    let requests = first.request_sequence();
    let sends = first.send_sequence();
    for (rank, t) in rest.iter().enumerate() {
        if t.request_sequence() != requests {
            return Err(OracleViolation::CollectiveOrder {
                conn,
                detail: format!(
                    "rank {} saw requests {:?}, rank 0 saw {:?}",
                    rank + 1,
                    t.request_sequence(),
                    requests
                ),
            });
        }
        if t.send_sequence() != sends {
            return Err(OracleViolation::CollectiveOrder {
                conn,
                detail: format!(
                    "rank {} sent {:?}, rank 0 sent {:?}",
                    rank + 1,
                    t.send_sequence(),
                    sends
                ),
            });
        }
    }
    Ok(())
}

/// Replays the match predicate over the trace's full export history and
/// checks every memcpy-skip and send decision against the ground truth.
///
/// For each request `x` in the trace, the acceptable region
/// `policy.region(x, tol)` is evaluated against the *complete* history.
/// Decided protocol answers are stable under future exports (exports are
/// strictly increasing, so a region's best match never changes once
/// decided), which makes the full-history answer the ground truth:
///
/// * every ground-truth match must appear as a copied (never skipped)
///   export — a skip of the match object means the pruning rule discarded
///   data the importer was owed;
/// * every ground-truth match must appear in the send sequence;
/// * every send must be a ground-truth match of some request.
pub fn check_buffer_safety(
    conn: ConnectionId,
    policy: MatchPolicy,
    tol: Tolerance,
    trace: &Trace,
) -> Result<(), OracleViolation> {
    let mut history = ExportHistory::new();
    for t in trace.export_sequence() {
        if let Err(e) = history.record(t) {
            return Err(OracleViolation::BufferSafety {
                conn,
                detail: format!("export sequence is not strictly increasing at {t}: {e}"),
            });
        }
    }
    let skipped: BTreeSet<u64> = trace
        .skipped_exports()
        .iter()
        .map(|t| t.value().to_bits())
        .collect();
    let sent: BTreeSet<u64> = trace
        .send_sequence()
        .iter()
        .map(|t| t.value().to_bits())
        .collect();

    let mut truth = BTreeSet::new();
    for x in trace.request_sequence() {
        let region = policy.region(x, tol);
        let result = evaluate(&region, &history).map_err(|e| OracleViolation::BufferSafety {
            conn,
            detail: format!("replay of request {x} failed: {e}"),
        })?;
        let Some(m) = result.matched() else {
            continue; // NoMatch or still pending at shutdown: nothing owed.
        };
        truth.insert(m.value().to_bits());
        if skipped.contains(&m.value().to_bits()) {
            return Err(OracleViolation::BufferSafety {
                conn,
                detail: format!(
                    "match {m} for request {x} was exported with the memcpy skipped \
                     — the pruning rule discarded an object the importer is owed"
                ),
            });
        }
        if !sent.contains(&m.value().to_bits()) {
            return Err(OracleViolation::BufferSafety {
                conn,
                detail: format!("match {m} for request {x} was never sent"),
            });
        }
    }
    if let Some(extra) = sent.difference(&truth).next() {
        return Err(OracleViolation::BufferSafety {
            conn,
            detail: format!(
                "sent {} which matches no request under the ground-truth predicate",
                Timestamp::new(f64::from_bits(*extra)).expect("sent timestamp was valid")
            ),
        });
    }
    Ok(())
}

/// Every scheduled import call resolved, and the importer reached the end
/// of its schedule.
pub fn check_liveness(
    conn: ConnectionId,
    scheduled: usize,
    resolved: usize,
    import_done: bool,
) -> Result<(), OracleViolation> {
    if resolved < scheduled {
        return Err(OracleViolation::Liveness {
            conn,
            detail: format!("only {resolved} of {scheduled} import calls resolved"),
        });
    }
    if !import_done {
        return Err(OracleViolation::Liveness {
            conn,
            detail: "importer never completed its schedule".to_string(),
        });
    }
    Ok(())
}

/// The discrete-event simulator and the threaded fabric decided identical
/// per-request match outcomes.
pub fn check_runtime_equivalence(
    conn: ConnectionId,
    des: &[Option<Timestamp>],
    threaded: &[Option<Timestamp>],
) -> Result<(), OracleViolation> {
    if des.len() != threaded.len() {
        return Err(OracleViolation::RuntimeEquivalence {
            conn,
            detail: format!(
                "DES resolved {} requests, threaded resolved {}",
                des.len(),
                threaded.len()
            ),
        });
    }
    for (i, (d, t)) in des.iter().zip(threaded).enumerate() {
        if d != t {
            return Err(OracleViolation::RuntimeEquivalence {
                conn,
                detail: format!("request {i}: DES decided {d:?}, threaded decided {t:?}"),
            });
        }
    }
    Ok(())
}

/// Replays a rank's trace against the ground-truth predicate and counts the
/// matches the importer is owed: requests whose acceptable region, evaluated
/// over the *complete* export history, decided a match. Each such match is
/// one transfer every exporting rank must emit.
pub fn owed_matches(
    conn: ConnectionId,
    policy: MatchPolicy,
    tol: Tolerance,
    trace: &Trace,
) -> Result<usize, OracleViolation> {
    let mut history = ExportHistory::new();
    for t in trace.export_sequence() {
        history
            .record(t)
            .map_err(|e| OracleViolation::MetricConsistency {
                conn,
                detail: format!("export sequence is not strictly increasing at {t}: {e}"),
            })?;
    }
    let mut owed = 0;
    for x in trace.request_sequence() {
        let result = evaluate(&policy.region(x, tol), &history).map_err(|e| {
            OracleViolation::MetricConsistency {
                conn,
                detail: format!("replay of request {x} failed: {e}"),
            }
        })?;
        if result.matched().is_some() {
            owed += 1;
        }
    }
    Ok(owed)
}

/// Checks a run's counter snapshot against its conservation laws and the
/// ground-truth replay:
///
/// * every export call either paid or skipped the framework memcpy
///   (`memcpy_paid + memcpy_skipped == export_calls`);
/// * the run emitted exactly the transfers the importers are owed:
///   for each connection, every exporting rank sends each ground-truth
///   match once, so `transfers == Σ_conn owed(conn) × exporter_procs(conn)`.
///
/// `owed` carries one `(connection, owed-match count, exporter process
/// count)` entry per connection, with the owed count derived via
/// [`owed_matches`] from any rank's trace (Property 1 makes all ranks
/// equivalent).
pub fn check_metric_consistency(
    counters: &CounterSnapshot,
    owed: &[(ConnectionId, usize, usize)],
) -> Result<(), OracleViolation> {
    let first_conn = owed.first().map(|&(c, _, _)| c).unwrap_or(ConnectionId(0));
    if counters.memcpy_paid + counters.memcpy_skipped != counters.export_calls {
        return Err(OracleViolation::MetricConsistency {
            conn: first_conn,
            detail: format!(
                "memcpy conservation broken: {} paid + {} skipped != {} export calls",
                counters.memcpy_paid, counters.memcpy_skipped, counters.export_calls
            ),
        });
    }
    let expected: usize = owed.iter().map(|&(_, n, procs)| n * procs).sum();
    if counters.transfers != expected as u64 {
        return Err(OracleViolation::MetricConsistency {
            conn: first_conn,
            detail: format!(
                "run emitted {} transfers, ground-truth replay owes {expected} \
                 (Σ owed matches × exporter processes over {} connections)",
                counters.transfers,
                owed.len()
            ),
        });
    }
    Ok(())
}

/// Checks a hierarchical run's control-plane counters against the k-ary
/// distribution tree ([`super::tree`]). Only meaningful for runs with *no*
/// chaos at all — message duplication legally inflates relay counts.
///
/// Two layers:
///
/// * **O(log N) budget**: per collective, the rep originates at most
///   `min(k, N)` messages per broadcast (forward, answer, help) — never
///   the flat `N` — and the critical path is `depth(N) = ⌈log_k N⌉`
///   hops, so the rep-origin cost per import stays within
///   `k·⌈log_k N⌉ + 2k` for every connection shape.
/// * **Conservation**: summed over `conns` (one `(connection, collectives,
///   exporter procs, importer procs)` entry each, the collective count
///   being the importer's schedule length — fault-free, every scheduled
///   import becomes exactly one aggregated request):
///   - `ctrl_sent[ForwardRequest] == Σ reqs × min(k, N_exp)` — forwards
///     originate at tree roots only;
///   - `ctrl_sent[AnswerBcast]   == Σ reqs × min(k, N_imp)` — answer
///     broadcasts likewise (hierarchical answers travel as coalesced
///     frames, classed as `AnswerBcast`);
///   - `ctrl_sent[BuddyHelp]     == Σ reqs × min(k, N_exp)` when
///     buddy-help is on (the at-decision help broadcast), else `0`;
///   - `ctrl_relay == Σ reqs × (N − min(k, N))` summed over the three
///     broadcasts — every non-root rank is reached by exactly one relay
///     hop;
///   - `ctrl_coalesced == Σ reqs × (N_imp + N_exp·buddy)` — each
///     coalesced frame (origin or relay) crosses exactly one edge per
///     rank;
///   - `tree_depth == max ⌈log_k N⌉` over the participating programs.
///
/// Origin + relay equalities together prove every rank received each
/// collective **exactly once**: the tree covers each rank by exactly one
/// edge, and the counters show exactly one send per edge per collective.
pub fn check_ctrl_scaling(
    counters: &CounterSnapshot,
    conns: &[(ConnectionId, usize, usize, usize)],
    buddy_help: bool,
) -> Result<(), OracleViolation> {
    let first_conn = conns.first().map(|&(c, ..)| c).unwrap_or(ConnectionId(0));
    let k = tree::BRANCH;
    let origin = |n: usize| n.min(k) as u64;
    let relayed = |n: usize| (n - n.min(k)) as u64;
    let (mut fwd, mut bcast, mut help) = (0u64, 0u64, 0u64);
    let (mut relay, mut coalesced, mut max_depth) = (0u64, 0u64, 0u64);
    for &(conn, reqs, n_exp, n_imp) in conns {
        let reqs = reqs as u64;
        fwd += reqs * origin(n_exp);
        bcast += reqs * origin(n_imp);
        relay += reqs * (relayed(n_exp) + relayed(n_imp));
        coalesced += reqs * n_imp as u64;
        if buddy_help {
            help += reqs * origin(n_exp);
            relay += reqs * relayed(n_exp);
            coalesced += reqs * n_exp as u64;
        }
        let n = n_exp.max(n_imp);
        max_depth = max_depth.max(tree::depth(n) as u64);
        let per_import = origin(n_exp) * (1 + buddy_help as u64) + origin(n_imp);
        let budget = (k * tree::depth(n) + 2 * k) as u64;
        if per_import > budget {
            return Err(OracleViolation::CtrlScaling {
                conn,
                detail: format!(
                    "rep originates {per_import} messages per collective over \
                     {n_exp}×{n_imp} ranks — past the k·⌈log_k N⌉ + 2k = {budget} budget"
                ),
            });
        }
    }
    let checks = [
        (
            "forward origins",
            counters.ctrl(CtrlClass::ForwardRequest),
            fwd,
        ),
        (
            "answer-bcast origins",
            counters.ctrl(CtrlClass::AnswerBcast),
            bcast,
        ),
        (
            "buddy-help origins",
            counters.ctrl(CtrlClass::BuddyHelp),
            help,
        ),
        ("relay hops", counters.ctrl_relay, relay),
        ("coalesced frames", counters.ctrl_coalesced, coalesced),
        ("tree depth", counters.tree_depth, max_depth),
    ];
    for (name, got, want) in checks {
        if got != want {
            return Err(OracleViolation::CtrlScaling {
                conn: first_conn,
                detail: format!(
                    "{name}: counted {got}, the distribution tree accounts for \
                     exactly {want} — some rank was skipped, served twice, or \
                     reached outside the tree"
                ),
            });
        }
    }
    Ok(())
}

/// Checks that a run configured **without** permanent faults left the
/// reliability machinery untouched: no retransmits, timeouts, failovers or
/// degraded buffers, and no ack/heartbeat traffic. The reliability layer is
/// armed only when the fault plan needs it, so any nonzero count here means
/// the fault-free fast path is no longer inert (and bit-identical baselines
/// are at risk).
pub fn check_fault_free(counters: &CounterSnapshot) -> Result<(), OracleViolation> {
    let fields = [
        ("retransmits", counters.retransmits),
        ("timeouts", counters.timeouts),
        ("failovers", counters.failovers),
        ("degraded_buffers", counters.degraded_buffers),
        ("acks", counters.ctrl(CtrlClass::Ack)),
        ("heartbeats", counters.ctrl(CtrlClass::Heartbeat)),
        // The socket transport must be equally inert on a clean run: no
        // reconnects, and every inbound frame decoded cleanly.
        ("net_reconnects", counters.net_reconnects),
        ("net_codec_rejects", counters.net_codec_rejects),
        // A clean run never replays or truncates a write-ahead journal
        // (appends are legal durability overhead; recovery is not).
        ("wal_replayed", counters.wal_replayed),
        ("wal_truncated", counters.wal_truncated),
    ];
    for (name, value) in fields {
        if value != 0 {
            return Err(OracleViolation::MetricConsistency {
                conn: ConnectionId(0),
                detail: format!(
                    "fault-free run is not inert: {name} = {value} (reliability \
                     machinery ran without a fault plan)"
                ),
            });
        }
    }
    Ok(())
}

/// Re-exported so callers can reason about decidedness when pairing the
/// oracles with custom schedules.
pub fn ground_truth(
    policy: MatchPolicy,
    tol: Tolerance,
    request: Timestamp,
    history: &ExportHistory,
) -> Result<MatchResult, couplink_time::HistoryError> {
    evaluate(&policy.region(request, tol), history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use couplink_proto::{ExportPort, RequestId};
    use couplink_time::ts;

    /// Drives a single port: requests are issued as soon as the next export
    /// would pass them (an importer running slightly ahead), and every
    /// effect is recorded into a trace.
    fn traced_run(exports: &[f64], requests: &[f64]) -> Trace {
        let mut port = ExportPort::new(
            ConnectionId(0),
            MatchPolicy::RegL,
            Tolerance::new(0.5).expect("tolerance"),
        );
        let mut trace = Trace::new();
        let mut req = 0u64;
        let mut it = requests.iter().copied().peekable();
        for &e in exports {
            while let Some(&x) = it.peek() {
                if x > e {
                    break;
                }
                it.next();
                let id = RequestId(req);
                req += 1;
                let fx = port.on_request(id, ts(x)).expect("request");
                trace.record_request(ts(x), &fx);
            }
            let fx = port.on_export(ts(e)).expect("export");
            trace.record_export(ts(e), &fx);
        }
        for x in it {
            let id = RequestId(req);
            req += 1;
            let fx = port.on_request(id, ts(x)).expect("request");
            trace.record_request(ts(x), &fx);
        }
        trace
    }

    #[test]
    fn clean_single_port_run_passes_buffer_safety() {
        let trace = traced_run(&[1.0, 2.0, 3.0, 4.0, 5.0], &[2.2, 4.1]);
        check_buffer_safety(
            ConnectionId(0),
            MatchPolicy::RegL,
            Tolerance::new(0.5).expect("tolerance"),
            &trace,
        )
        .expect("clean run must satisfy buffer safety");
    }

    #[test]
    fn collective_order_flags_diverging_sends() {
        let a = traced_run(&[1.0, 2.0, 3.0], &[2.2]);
        let b = traced_run(&[1.0, 2.0, 3.0], &[1.2]);
        let err = check_collective_order(ConnectionId(1), &[a, b]).unwrap_err();
        assert!(matches!(err, OracleViolation::CollectiveOrder { .. }));
        assert_eq!(err.conn(), ConnectionId(1));
    }

    #[test]
    fn collective_order_accepts_identical_ranks() {
        let a = traced_run(&[1.0, 2.0, 3.0], &[2.2]);
        let b = traced_run(&[1.0, 2.0, 3.0], &[2.2]);
        check_collective_order(ConnectionId(0), &[a, b]).expect("identical ranks");
    }

    #[test]
    fn liveness_flags_unresolved_requests() {
        assert!(check_liveness(ConnectionId(0), 5, 5, true).is_ok());
        let err = check_liveness(ConnectionId(0), 5, 4, true).unwrap_err();
        assert!(matches!(err, OracleViolation::Liveness { .. }));
        let err = check_liveness(ConnectionId(0), 5, 5, false).unwrap_err();
        assert!(err.to_string().contains("never completed"));
    }

    #[test]
    fn metric_consistency_checks_conservation_and_owed_transfers() {
        let trace = traced_run(&[1.0, 2.0, 3.0, 4.0, 5.0], &[2.2, 4.1]);
        let tol = Tolerance::new(0.5).expect("tolerance");
        let owed =
            owed_matches(ConnectionId(0), MatchPolicy::RegL, tol, &trace).expect("clean replay");
        assert_eq!(owed, 2, "both requests decide a match");

        let mut counters = CounterSnapshot {
            memcpy_paid: 4,
            memcpy_skipped: 1,
            bytes_buffered: 0,
            bytes_transferred: 0,
            ctrl_sent: [0; 9],
            transfers: 6,
            export_calls: 5,
            import_calls: 2,
            buffer_stalls: 0,
            retransmits: 0,
            timeouts: 0,
            failovers: 0,
            degraded_buffers: 0,
            payload_allocs: 0,
            ctrl_batches: 0,
            ctrl_relay: 0,
            ctrl_coalesced: 0,
            hb_suppressed: 0,
            net_frames: 0,
            net_bytes: 0,
            net_reconnects: 0,
            net_codec_rejects: 0,
            net_syscalls: 0,
            net_writev_frames: 0,
            net_pool_hits: 0,
            net_pool_misses: 0,
            net_rx_frames: 0,
            net_rx_bytes: 0,
            wal_appends: 0,
            wal_bytes: 0,
            wal_replayed: 0,
            wal_truncated: 0,
            lock_wait_ns: 0,
            buffered_hwm: 0,
            queue_depth_hwm: 0,
            runq_depth_hwm: 0,
            tree_depth: 0,
            net_rx_buf_hwm: 0,
            tasks_polled: 0,
            worker_steal: 0,
            occupancy: [0; couplink_metrics::HISTOGRAM_BUCKETS],
            recovery_ms: [0; couplink_metrics::HISTOGRAM_BUCKETS],
            poll_batch: [0; couplink_metrics::HISTOGRAM_BUCKETS],
        };
        // 2 owed matches × 3 exporter processes = 6 transfers: consistent.
        check_metric_consistency(&counters, &[(ConnectionId(0), owed, 3)])
            .expect("consistent counters");

        counters.memcpy_skipped = 2;
        let err = check_metric_consistency(&counters, &[(ConnectionId(0), owed, 3)]).unwrap_err();
        assert!(err.to_string().contains("memcpy conservation broken"));

        counters.memcpy_skipped = 1;
        counters.transfers = 5;
        let err = check_metric_consistency(&counters, &[(ConnectionId(0), owed, 3)]).unwrap_err();
        assert!(matches!(err, OracleViolation::MetricConsistency { .. }));
        assert!(err.to_string().contains("ground-truth replay owes 6"));
    }

    #[test]
    fn equivalence_flags_divergence() {
        let des = vec![Some(ts(1.0)), None];
        let thr = vec![Some(ts(1.0)), Some(ts(2.0))];
        let err = check_runtime_equivalence(ConnectionId(2), &des, &thr).unwrap_err();
        assert!(matches!(err, OracleViolation::RuntimeEquivalence { .. }));
        check_runtime_equivalence(ConnectionId(2), &des, &des).expect("identical outcomes");
    }
}
