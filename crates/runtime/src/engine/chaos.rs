//! Deterministic fault injection for control-plane traffic.
//!
//! The simulation-testing harness (`couplink-simtest`) wraps each runtime's
//! [`Transport`](super::Transport) with *chaos*: seeded per-message delay,
//! duplication and bounded drop-with-retry. Every decision is a pure
//! function of the [`ChaosConfig`] seed and a per-transport message counter,
//! so a failing run replays exactly from its seed.
//!
//! # What may legally be perturbed
//!
//! Not every control message tolerates every fault. The protocol divides
//! [`CtrlMsg`] into two classes:
//!
//! * **Commutative** — `Response`, `BuddyHelp`, `Answer`, `AnswerBcast`.
//!   These are reordering-tolerant at their receivers: the rep keeps a
//!   completed-request map that absorbs late responses, an export port
//!   tolerates buddy-help racing a local resolution, and import ports key
//!   answers by request id. They may be delayed arbitrarily (within the
//!   bound) and dropped-with-retry.
//!
//!   Duplication is a strictly stronger demand — the receiver's handling
//!   must be *idempotent* — and only `Response` meets it (the rep tracks
//!   per-rank settlement, so a replayed response is absorbed). `Answer`
//!   and `AnswerBcast` are one-shot transfer directives: a duplicate makes
//!   the receiving rank send its data piece a second time, which the
//!   collective-order oracle rightly flags. A duplicated `BuddyHelp` can
//!   arrive after its request closed, which the port treats as a protocol
//!   error. See [`duplicable`].
//! * **FIFO** — `ImportCall`, `ImportRequest`, `ForwardRequest`. The
//!   protocol's strictly-increasing-timestamp invariants require these to
//!   arrive in per-stream order (a reordered `ForwardRequest` is a
//!   [`HistoryError::NotIncreasing`](couplink_time::HistoryError), not a
//!   tolerated fault), and they must never be duplicated. They may still be
//!   delayed — including a bounded drop-with-retry — as long as the stream
//!   order is preserved, which [`ChaosState`] enforces with a per-stream
//!   delivery watermark.
//!
//! * **Link layer** — `Ack`, `Heartbeat` (PR 4). These belong to the
//!   reliability layer itself ([`super::reliable`]) and are *idempotent by
//!   construction*: acking a sequence number twice is a no-op (the pending
//!   entry is already gone), and a heartbeat carries only a monotone beat
//!   index of which receivers keep the max. They are therefore both
//!   commutative **and** [`duplicable`] — chaos may delay, reorder and
//!   double-deliver them freely. They are never themselves sequenced (an
//!   ack of an ack would regress infinitely), so they are also the only
//!   messages the reliability layer sends best-effort.
//!
//! Drops are always *with retry*: the message is delivered after
//! [`ChaosConfig::retry_delay`] instead of vanishing. Total extra latency is
//! therefore bounded by `retry_delay + max_delay`, which is what makes the
//! liveness oracle a theorem rather than a hope.
//!
//! # Permanent faults (PR 4)
//!
//! The classes above describe faults the *transport wrapper* heals by
//! itself. Two further fault classes are healed by nobody but the protocol:
//!
//! * **Permanent loss** ([`ChaosConfig::loss_prob`]): a message copy
//!   vanishes for good. Only the reliability layer's ack/timeout/retransmit
//!   machinery ([`super::reliable`]) recovers it, so runtimes refuse to arm
//!   it without that layer (it would be a guaranteed hang).
//! * **Crash/restart** ([`CrashFault`]): a rep (or, on the fabric, an agent)
//!   process dies after consuming its k-th message, optionally coming back
//!   `restart_after` seconds later. Recovery is rep failover: heartbeats
//!   detect the death, and a successor rebuilds the aggregation state from
//!   the consumed-message journal (see `DESIGN.md`, "Fault model &
//!   recovery").
//!
//! Both are seeded and deterministic like everything else here.

use super::Endpoint;
use couplink_proto::{ConnectionId, CtrlMsg, ProcResponse, RepAnswer};
use std::collections::HashMap;

/// Seeded fault-injection parameters. All probabilities are in `[0, 1]`;
/// all delays are in the runtime's clock unit (virtual seconds for the
/// simulator, wall seconds for the fabric).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Root seed; every per-message decision derives from it.
    pub seed: u64,
    /// Maximum extra delivery jitter per message copy.
    pub max_delay: f64,
    /// Probability that a [`duplicable`] message is delivered twice.
    pub duplicate_prob: f64,
    /// Probability that a message's first delivery is dropped and the
    /// retry path (delivery after [`ChaosConfig::retry_delay`]) is taken.
    pub drop_prob: f64,
    /// Extra latency of a dropped-then-retried message.
    pub retry_delay: f64,
    /// Probability that a message copy is lost *permanently* (no transport
    /// retry). Requires the reliability layer: runtimes must refuse to arm
    /// a non-zero value without it.
    pub loss_prob: f64,
    /// Optional crash/restart fault.
    pub crash: Option<CrashFault>,
}

/// Which process a [`CrashFault`] kills.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashTarget {
    /// The rep of program `prog` (recovered by failover).
    Rep(usize),
    /// An exporter agent thread (threaded fabric only; not recovered —
    /// exercised by the `catch_unwind` crash-surfacing path).
    Agent {
        /// Program index.
        prog: usize,
        /// Process rank within the program.
        rank: usize,
    },
}

/// A seeded crash/restart fault: the target dies immediately before
/// consuming its `after_msgs`-th message (that message is lost, unacked),
/// and optionally restarts `restart_after` seconds later. Without a
/// restart, recovery waits for the heartbeat-timeout failover path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashFault {
    /// Which process dies.
    pub target: CrashTarget,
    /// The fatal message index (0-based count of consumed messages).
    pub after_msgs: u64,
    /// Seconds until the process restarts, `None` to rely on failover.
    pub restart_after: Option<f64>,
}

impl ChaosConfig {
    /// A moderately hostile default: noticeable jitter, 20% duplication,
    /// 10% drop-with-retry.
    pub fn from_seed(seed: u64) -> Self {
        ChaosConfig {
            seed,
            max_delay: 0.05,
            duplicate_prob: 0.2,
            drop_prob: 0.1,
            retry_delay: 0.1,
            loss_prob: 0.0,
            crash: None,
        }
    }

    /// Whether this plan contains faults only the protocol's reliability
    /// layer can survive (permanent loss or a crash). Runtimes arm the
    /// ack/retransmit/failover machinery exactly when this is true, keeping
    /// fault-free runs bit-identical to the pre-reliability engine.
    pub fn needs_reliability(&self) -> bool {
        self.loss_prob > 0.0 || self.crash.is_some()
    }

    /// Whether delivery attempt number `attempt_nonce` of `msg` to `to` is
    /// permanently lost. Stateless and deterministic; callers must feed a
    /// nonce unique per attempt (retransmits draw independently).
    pub fn lost(&self, attempt_nonce: u64, to: Endpoint, msg: &CtrlMsg) -> bool {
        if self.loss_prob <= 0.0 {
            return false;
        }
        let h = mix(
            mix(mix(self.seed, attempt_nonce), endpoint_bits(to)),
            msg_bits(msg),
        );
        unit(mix(h, 5)) < self.loss_prob
    }

    /// Relative extra delays (beyond the runtime's nominal latency) for
    /// each delivered copy of message number `n` to `to`. Always non-empty;
    /// more than one entry only for commutative messages.
    ///
    /// Stateless and deterministic: the same `(seed, n, to, msg)` always
    /// yields the same plan. FIFO-class callers must additionally clamp the
    /// resulting delivery times to their stream watermark (see
    /// [`ChaosState::deliveries`]).
    pub fn extra_delays(&self, n: u64, to: Endpoint, msg: &CtrlMsg) -> Vec<f64> {
        let h = mix(mix(mix(self.seed, n), endpoint_bits(to)), msg_bits(msg));
        let dropped = unit(mix(h, 1)) < self.drop_prob;
        let base = if dropped { self.retry_delay } else { 0.0 };
        let mut delays = vec![base + unit(mix(h, 2)) * self.max_delay];
        if duplicable(msg) && unit(mix(h, 3)) < self.duplicate_prob {
            delays.push(unit(mix(h, 4)) * self.max_delay);
        }
        delays
    }
}

/// Whether a control message's receiver is idempotent, so the message may
/// be delivered twice. `Response` qualifies because the rep tracks per-rank
/// settlement (this was originally the whole commutative class, until the
/// harness itself caught a duplicated `Answer` double-sending data); the
/// link-layer `Ack`/`Heartbeat` qualify by construction — acking a seq
/// twice is a no-op and heartbeat receivers keep the max beat index.
pub fn duplicable(msg: &CtrlMsg) -> bool {
    matches!(
        msg,
        CtrlMsg::Response { .. } | CtrlMsg::Ack { .. } | CtrlMsg::Heartbeat { .. }
    )
}

/// Whether a control message tolerates unbounded reordering and
/// drop-with-retry (see the module docs for the class analysis).
pub fn commutes(msg: &CtrlMsg) -> bool {
    match msg {
        CtrlMsg::Response { .. }
        | CtrlMsg::BuddyHelp { .. }
        | CtrlMsg::Answer { .. }
        | CtrlMsg::AnswerBcast { .. }
        // A coalesced tree frame carries only final answers (broadcast +
        // folded buddy-help), which settle a request like the messages it
        // replaces — reordering against other requests is harmless.
        | CtrlMsg::Coalesced { .. }
        | CtrlMsg::Ack { .. }
        | CtrlMsg::Heartbeat { .. } => true,
        CtrlMsg::ImportCall { .. }
        | CtrlMsg::ImportRequest { .. }
        | CtrlMsg::ForwardRequest { .. } => false,
    }
}

/// Stateful chaos planner for a single-threaded runtime (the simulator):
/// tracks per-stream delivery watermarks so FIFO-class messages can be
/// delayed without ever being reordered within their stream.
#[derive(Debug)]
pub struct ChaosState {
    cfg: ChaosConfig,
    counter: u64,
    /// Latest planned delivery time per FIFO stream `(connection, dest)`.
    watermarks: HashMap<(ConnectionId, Endpoint), f64>,
}

impl ChaosState {
    /// A planner for one run.
    pub fn new(cfg: ChaosConfig) -> Self {
        ChaosState {
            cfg,
            counter: 0,
            watermarks: HashMap::new(),
        }
    }

    /// The configuration this planner runs.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// Absolute delivery times for each copy of `msg`, given that an
    /// unperturbed delivery would happen at `base_at`. Commutative messages
    /// get one or two jittered copies; FIFO-class messages get exactly one
    /// copy, clamped so the stream `(conn, to)` never reorders.
    pub fn deliveries(&mut self, base_at: f64, to: Endpoint, msg: &CtrlMsg) -> Vec<f64> {
        let n = self.counter;
        self.counter += 1;
        let delays = self.cfg.extra_delays(n, to, msg);
        if commutes(msg) {
            return delays.iter().map(|d| base_at + d).collect();
        }
        let at = base_at + delays[0];
        let wm = self
            .watermarks
            .entry((conn_of(msg), to))
            .or_insert(f64::NEG_INFINITY);
        let at = at.max(*wm);
        *wm = at;
        vec![at]
    }
}

fn conn_of(msg: &CtrlMsg) -> ConnectionId {
    match *msg {
        CtrlMsg::ImportCall { conn, .. }
        | CtrlMsg::ImportRequest { conn, .. }
        | CtrlMsg::ForwardRequest { conn, .. }
        | CtrlMsg::Response { conn, .. }
        | CtrlMsg::BuddyHelp { conn, .. }
        | CtrlMsg::Answer { conn, .. }
        | CtrlMsg::AnswerBcast { conn, .. }
        | CtrlMsg::Coalesced { conn, .. } => conn,
        // Link-layer messages are commutative, so no FIFO stream exists.
        CtrlMsg::Ack { .. } | CtrlMsg::Heartbeat { .. } => {
            unreachable!("link-layer messages have no FIFO stream")
        }
    }
}

/// splitmix64 finalizer over an accumulating state: the workhorse behind
/// every seeded decision.
fn mix(state: u64, v: u64) -> u64 {
    let mut z = state
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(v.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn endpoint_bits(e: Endpoint) -> u64 {
    match e {
        Endpoint::Proc { prog, rank } => ((prog as u64) << 32) | rank as u64,
        Endpoint::Rep { prog } => (1 << 63) | prog as u64,
    }
}

fn msg_bits(msg: &CtrlMsg) -> u64 {
    match *msg {
        CtrlMsg::ImportCall { conn, rank, ts } => mix(
            mix(1, ((conn.0 as u64) << 32) | rank.0 as u64),
            ts.value().to_bits(),
        ),
        CtrlMsg::ImportRequest { conn, req, ts } => mix(
            mix(2, ((conn.0 as u64) << 32) | req.0),
            ts.value().to_bits(),
        ),
        CtrlMsg::ForwardRequest { conn, req, ts } => mix(
            mix(3, ((conn.0 as u64) << 32) | req.0),
            ts.value().to_bits(),
        ),
        CtrlMsg::Response {
            conn,
            req,
            rank,
            resp,
        } => mix(
            mix(mix(4, ((conn.0 as u64) << 32) | req.0), rank.0 as u64),
            response_bits(resp),
        ),
        CtrlMsg::BuddyHelp { conn, req, answer } => {
            mix(mix(5, ((conn.0 as u64) << 32) | req.0), answer_bits(answer))
        }
        CtrlMsg::Answer { conn, req, answer } => {
            mix(mix(6, ((conn.0 as u64) << 32) | req.0), answer_bits(answer))
        }
        CtrlMsg::AnswerBcast { conn, req, answer } => {
            mix(mix(7, ((conn.0 as u64) << 32) | req.0), answer_bits(answer))
        }
        CtrlMsg::Ack { seq } => mix(8, seq),
        CtrlMsg::Heartbeat { beat } => mix(9, beat),
        CtrlMsg::Coalesced {
            conn,
            req,
            answer,
            bcast,
            help,
        } => mix(
            mix(
                mix(10, ((conn.0 as u64) << 32) | req.0),
                answer_bits(answer),
            ),
            u64::from(bcast) | (u64::from(help) << 1),
        ),
    }
}

fn response_bits(r: ProcResponse) -> u64 {
    match r {
        ProcResponse::Match(t) => mix(1, t.value().to_bits()),
        ProcResponse::NoMatch => 2,
        ProcResponse::Pending { latest } => mix(3, latest.map_or(0, |t| t.value().to_bits())),
    }
}

fn answer_bits(a: RepAnswer) -> u64 {
    match a {
        RepAnswer::Match(t) => mix(1, t.value().to_bits()),
        RepAnswer::NoMatch => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use couplink_proto::{Rank, RequestId};
    use couplink_time::ts;

    fn fwd(conn: u32, req: u64) -> CtrlMsg {
        CtrlMsg::ForwardRequest {
            conn: ConnectionId(conn),
            req: RequestId(req),
            ts: ts(10.0 + req as f64),
        }
    }

    fn resp(conn: u32, req: u64) -> CtrlMsg {
        CtrlMsg::Response {
            conn: ConnectionId(conn),
            req: RequestId(req),
            rank: Rank(0),
            resp: ProcResponse::NoMatch,
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let cfg = ChaosConfig::from_seed(42);
        let to = Endpoint::Proc { prog: 0, rank: 1 };
        for n in 0..50 {
            assert_eq!(
                cfg.extra_delays(n, to, &fwd(0, n)),
                cfg.extra_delays(n, to, &fwd(0, n))
            );
        }
    }

    #[test]
    fn fifo_class_is_never_duplicated() {
        let cfg = ChaosConfig {
            duplicate_prob: 1.0,
            ..ChaosConfig::from_seed(7)
        };
        let to = Endpoint::Proc { prog: 0, rank: 0 };
        for n in 0..100 {
            assert_eq!(cfg.extra_delays(n, to, &fwd(0, n)).len(), 1);
            assert_eq!(cfg.extra_delays(n, to, &resp(0, n)).len(), 2);
        }
    }

    /// One-shot directives must never be duplicated even at probability 1:
    /// a doubled `Answer` makes a rank send its data piece twice.
    #[test]
    fn one_shot_directives_are_never_duplicated() {
        let cfg = ChaosConfig {
            duplicate_prob: 1.0,
            ..ChaosConfig::from_seed(11)
        };
        let to = Endpoint::Proc { prog: 0, rank: 0 };
        for n in 0..100 {
            let one_shot = [
                CtrlMsg::Answer {
                    conn: ConnectionId(0),
                    req: RequestId(n),
                    answer: RepAnswer::Match(ts(1.0)),
                },
                CtrlMsg::AnswerBcast {
                    conn: ConnectionId(0),
                    req: RequestId(n),
                    answer: RepAnswer::NoMatch,
                },
                CtrlMsg::BuddyHelp {
                    conn: ConnectionId(0),
                    req: RequestId(n),
                    answer: RepAnswer::NoMatch,
                },
            ];
            for msg in one_shot {
                assert!(commutes(&msg) && !duplicable(&msg));
                assert_eq!(cfg.extra_delays(n, to, &msg).len(), 1);
            }
        }
    }

    /// Ack and Heartbeat are idempotent by construction, so chaos *must*
    /// be allowed to double-deliver them: at duplication probability 1 the
    /// plan always carries two copies (and both stay commutative — they
    /// never touch a FIFO watermark).
    #[test]
    fn ack_and_heartbeat_are_duplicable() {
        let cfg = ChaosConfig {
            duplicate_prob: 1.0,
            ..ChaosConfig::from_seed(13)
        };
        let to = Endpoint::Proc { prog: 0, rank: 1 };
        for n in 0..100 {
            for msg in [CtrlMsg::Ack { seq: n }, CtrlMsg::Heartbeat { beat: n }] {
                assert!(msg.is_link_layer());
                assert!(commutes(&msg) && duplicable(&msg), "{msg:?}");
                assert_eq!(cfg.extra_delays(n, to, &msg).len(), 2, "{msg:?}");
            }
        }
    }

    /// Permanent loss is deterministic per attempt nonce, distinct across
    /// attempts, and hits roughly at the configured rate.
    #[test]
    fn permanent_loss_is_seeded_and_per_attempt() {
        let cfg = ChaosConfig {
            loss_prob: 0.3,
            ..ChaosConfig::from_seed(21)
        };
        let to = Endpoint::Rep { prog: 1 };
        let mut lost = 0;
        for n in 0..1000 {
            let l = cfg.lost(n, to, &resp(0, n));
            assert_eq!(l, cfg.lost(n, to, &resp(0, n)), "deterministic");
            lost += l as u64;
        }
        assert!((150..450).contains(&lost), "loss rate off: {lost}/1000");
        // loss_prob 0 never loses, and doesn't even hash.
        let off = ChaosConfig::from_seed(21);
        assert!(!off.needs_reliability());
        assert!((0..100).all(|n| !off.lost(n, to, &resp(0, n))));
        assert!(cfg.needs_reliability());
    }

    #[test]
    fn delays_are_bounded() {
        let cfg = ChaosConfig {
            drop_prob: 1.0,
            ..ChaosConfig::from_seed(3)
        };
        let to = Endpoint::Rep { prog: 2 };
        for n in 0..100 {
            for d in cfg.extra_delays(n, to, &resp(1, n)) {
                assert!((0.0..=cfg.retry_delay + cfg.max_delay).contains(&d));
            }
        }
    }

    #[test]
    fn fifo_stream_never_reorders() {
        let mut state = ChaosState::new(ChaosConfig {
            drop_prob: 0.5,
            ..ChaosConfig::from_seed(11)
        });
        let to = Endpoint::Proc { prog: 1, rank: 0 };
        let mut last = f64::NEG_INFINITY;
        for (n, base) in (0..200).map(|i| (i, i as f64 * 0.001)) {
            let at = state.deliveries(base, to, &fwd(0, n))[0];
            assert!(at >= last, "stream reordered: {at} < {last}");
            assert!(at >= base, "delivered before emission");
            last = at;
        }
    }

    #[test]
    fn fifo_streams_are_independent_per_connection() {
        let mut state = ChaosState::new(ChaosConfig::from_seed(5));
        let to = Endpoint::Proc { prog: 0, rank: 0 };
        // A huge delay on conn 0 must not hold back conn 1's stream.
        let a = state.deliveries(0.0, to, &fwd(0, 0))[0];
        let b = state.deliveries(0.0, to, &fwd(1, 0))[0];
        assert!(a <= ChaosConfig::from_seed(5).retry_delay + 0.05);
        assert!(b <= ChaosConfig::from_seed(5).retry_delay + 0.05);
    }

    #[test]
    fn commutative_copies_ignore_watermarks() {
        let cfg = ChaosConfig {
            duplicate_prob: 1.0,
            ..ChaosConfig::from_seed(9)
        };
        let mut state = ChaosState::new(cfg);
        let to = Endpoint::Rep { prog: 0 };
        let times = state.deliveries(1.0, to, &resp(0, 0));
        assert_eq!(times.len(), 2);
        for t in times {
            assert!(t >= 1.0);
        }
    }
}
