//! Deterministic fault injection for control-plane traffic.
//!
//! The simulation-testing harness (`couplink-simtest`) wraps each runtime's
//! [`Transport`](super::Transport) with *chaos*: seeded per-message delay,
//! duplication and bounded drop-with-retry. Every decision is a pure
//! function of the [`ChaosConfig`] seed and a per-transport message counter,
//! so a failing run replays exactly from its seed.
//!
//! # What may legally be perturbed
//!
//! Not every control message tolerates every fault. The protocol divides
//! [`CtrlMsg`] into two classes:
//!
//! * **Commutative** — `Response`, `BuddyHelp`, `Answer`, `AnswerBcast`.
//!   These are reordering-tolerant at their receivers: the rep keeps a
//!   completed-request map that absorbs late responses, an export port
//!   tolerates buddy-help racing a local resolution, and import ports key
//!   answers by request id. They may be delayed arbitrarily (within the
//!   bound) and dropped-with-retry.
//!
//!   Duplication is a strictly stronger demand — the receiver's handling
//!   must be *idempotent* — and only `Response` meets it (the rep tracks
//!   per-rank settlement, so a replayed response is absorbed). `Answer`
//!   and `AnswerBcast` are one-shot transfer directives: a duplicate makes
//!   the receiving rank send its data piece a second time, which the
//!   collective-order oracle rightly flags. A duplicated `BuddyHelp` can
//!   arrive after its request closed, which the port treats as a protocol
//!   error. See [`duplicable`].
//! * **FIFO** — `ImportCall`, `ImportRequest`, `ForwardRequest`. The
//!   protocol's strictly-increasing-timestamp invariants require these to
//!   arrive in per-stream order (a reordered `ForwardRequest` is a
//!   [`HistoryError::NotIncreasing`](couplink_time::HistoryError), not a
//!   tolerated fault), and they must never be duplicated. They may still be
//!   delayed — including a bounded drop-with-retry — as long as the stream
//!   order is preserved, which [`ChaosState`] enforces with a per-stream
//!   delivery watermark.
//!
//! Drops are always *with retry*: the message is delivered after
//! [`ChaosConfig::retry_delay`] instead of vanishing. Total extra latency is
//! therefore bounded by `retry_delay + max_delay`, which is what makes the
//! liveness oracle a theorem rather than a hope.

use super::Endpoint;
use couplink_proto::{ConnectionId, CtrlMsg, ProcResponse, RepAnswer};
use std::collections::HashMap;

/// Seeded fault-injection parameters. All probabilities are in `[0, 1]`;
/// all delays are in the runtime's clock unit (virtual seconds for the
/// simulator, wall seconds for the fabric).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Root seed; every per-message decision derives from it.
    pub seed: u64,
    /// Maximum extra delivery jitter per message copy.
    pub max_delay: f64,
    /// Probability that a [`duplicable`] message is delivered twice.
    pub duplicate_prob: f64,
    /// Probability that a message's first delivery is dropped and the
    /// retry path (delivery after [`ChaosConfig::retry_delay`]) is taken.
    pub drop_prob: f64,
    /// Extra latency of a dropped-then-retried message.
    pub retry_delay: f64,
}

impl ChaosConfig {
    /// A moderately hostile default: noticeable jitter, 20% duplication,
    /// 10% drop-with-retry.
    pub fn from_seed(seed: u64) -> Self {
        ChaosConfig {
            seed,
            max_delay: 0.05,
            duplicate_prob: 0.2,
            drop_prob: 0.1,
            retry_delay: 0.1,
        }
    }

    /// Relative extra delays (beyond the runtime's nominal latency) for
    /// each delivered copy of message number `n` to `to`. Always non-empty;
    /// more than one entry only for commutative messages.
    ///
    /// Stateless and deterministic: the same `(seed, n, to, msg)` always
    /// yields the same plan. FIFO-class callers must additionally clamp the
    /// resulting delivery times to their stream watermark (see
    /// [`ChaosState::deliveries`]).
    pub fn extra_delays(&self, n: u64, to: Endpoint, msg: &CtrlMsg) -> Vec<f64> {
        let h = mix(mix(mix(self.seed, n), endpoint_bits(to)), msg_bits(msg));
        let dropped = unit(mix(h, 1)) < self.drop_prob;
        let base = if dropped { self.retry_delay } else { 0.0 };
        let mut delays = vec![base + unit(mix(h, 2)) * self.max_delay];
        if duplicable(msg) && unit(mix(h, 3)) < self.duplicate_prob {
            delays.push(unit(mix(h, 4)) * self.max_delay);
        }
        delays
    }
}

/// Whether a control message's receiver is idempotent, so the message may
/// be delivered twice (see the module docs for why only `Response`
/// qualifies — this was originally the whole commutative class, until the
/// harness itself caught a duplicated `Answer` double-sending data).
pub fn duplicable(msg: &CtrlMsg) -> bool {
    matches!(msg, CtrlMsg::Response { .. })
}

/// Whether a control message tolerates unbounded reordering and
/// drop-with-retry (see the module docs for the class analysis).
pub fn commutes(msg: &CtrlMsg) -> bool {
    match msg {
        CtrlMsg::Response { .. }
        | CtrlMsg::BuddyHelp { .. }
        | CtrlMsg::Answer { .. }
        | CtrlMsg::AnswerBcast { .. } => true,
        CtrlMsg::ImportCall { .. }
        | CtrlMsg::ImportRequest { .. }
        | CtrlMsg::ForwardRequest { .. } => false,
    }
}

/// Stateful chaos planner for a single-threaded runtime (the simulator):
/// tracks per-stream delivery watermarks so FIFO-class messages can be
/// delayed without ever being reordered within their stream.
#[derive(Debug)]
pub struct ChaosState {
    cfg: ChaosConfig,
    counter: u64,
    /// Latest planned delivery time per FIFO stream `(connection, dest)`.
    watermarks: HashMap<(ConnectionId, Endpoint), f64>,
}

impl ChaosState {
    /// A planner for one run.
    pub fn new(cfg: ChaosConfig) -> Self {
        ChaosState {
            cfg,
            counter: 0,
            watermarks: HashMap::new(),
        }
    }

    /// The configuration this planner runs.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// Absolute delivery times for each copy of `msg`, given that an
    /// unperturbed delivery would happen at `base_at`. Commutative messages
    /// get one or two jittered copies; FIFO-class messages get exactly one
    /// copy, clamped so the stream `(conn, to)` never reorders.
    pub fn deliveries(&mut self, base_at: f64, to: Endpoint, msg: &CtrlMsg) -> Vec<f64> {
        let n = self.counter;
        self.counter += 1;
        let delays = self.cfg.extra_delays(n, to, msg);
        if commutes(msg) {
            return delays.iter().map(|d| base_at + d).collect();
        }
        let at = base_at + delays[0];
        let wm = self
            .watermarks
            .entry((conn_of(msg), to))
            .or_insert(f64::NEG_INFINITY);
        let at = at.max(*wm);
        *wm = at;
        vec![at]
    }
}

fn conn_of(msg: &CtrlMsg) -> ConnectionId {
    match *msg {
        CtrlMsg::ImportCall { conn, .. }
        | CtrlMsg::ImportRequest { conn, .. }
        | CtrlMsg::ForwardRequest { conn, .. }
        | CtrlMsg::Response { conn, .. }
        | CtrlMsg::BuddyHelp { conn, .. }
        | CtrlMsg::Answer { conn, .. }
        | CtrlMsg::AnswerBcast { conn, .. } => conn,
    }
}

/// splitmix64 finalizer over an accumulating state: the workhorse behind
/// every seeded decision.
fn mix(state: u64, v: u64) -> u64 {
    let mut z = state
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(v.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn endpoint_bits(e: Endpoint) -> u64 {
    match e {
        Endpoint::Proc { prog, rank } => ((prog as u64) << 32) | rank as u64,
        Endpoint::Rep { prog } => (1 << 63) | prog as u64,
    }
}

fn msg_bits(msg: &CtrlMsg) -> u64 {
    match *msg {
        CtrlMsg::ImportCall { conn, rank, ts } => mix(
            mix(1, ((conn.0 as u64) << 32) | rank.0 as u64),
            ts.value().to_bits(),
        ),
        CtrlMsg::ImportRequest { conn, req, ts } => mix(
            mix(2, ((conn.0 as u64) << 32) | req.0),
            ts.value().to_bits(),
        ),
        CtrlMsg::ForwardRequest { conn, req, ts } => mix(
            mix(3, ((conn.0 as u64) << 32) | req.0),
            ts.value().to_bits(),
        ),
        CtrlMsg::Response {
            conn,
            req,
            rank,
            resp,
        } => mix(
            mix(mix(4, ((conn.0 as u64) << 32) | req.0), rank.0 as u64),
            response_bits(resp),
        ),
        CtrlMsg::BuddyHelp { conn, req, answer } => {
            mix(mix(5, ((conn.0 as u64) << 32) | req.0), answer_bits(answer))
        }
        CtrlMsg::Answer { conn, req, answer } => {
            mix(mix(6, ((conn.0 as u64) << 32) | req.0), answer_bits(answer))
        }
        CtrlMsg::AnswerBcast { conn, req, answer } => {
            mix(mix(7, ((conn.0 as u64) << 32) | req.0), answer_bits(answer))
        }
    }
}

fn response_bits(r: ProcResponse) -> u64 {
    match r {
        ProcResponse::Match(t) => mix(1, t.value().to_bits()),
        ProcResponse::NoMatch => 2,
        ProcResponse::Pending { latest } => mix(3, latest.map_or(0, |t| t.value().to_bits())),
    }
}

fn answer_bits(a: RepAnswer) -> u64 {
    match a {
        RepAnswer::Match(t) => mix(1, t.value().to_bits()),
        RepAnswer::NoMatch => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use couplink_proto::{Rank, RequestId};
    use couplink_time::ts;

    fn fwd(conn: u32, req: u64) -> CtrlMsg {
        CtrlMsg::ForwardRequest {
            conn: ConnectionId(conn),
            req: RequestId(req),
            ts: ts(10.0 + req as f64),
        }
    }

    fn resp(conn: u32, req: u64) -> CtrlMsg {
        CtrlMsg::Response {
            conn: ConnectionId(conn),
            req: RequestId(req),
            rank: Rank(0),
            resp: ProcResponse::NoMatch,
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let cfg = ChaosConfig::from_seed(42);
        let to = Endpoint::Proc { prog: 0, rank: 1 };
        for n in 0..50 {
            assert_eq!(
                cfg.extra_delays(n, to, &fwd(0, n)),
                cfg.extra_delays(n, to, &fwd(0, n))
            );
        }
    }

    #[test]
    fn fifo_class_is_never_duplicated() {
        let cfg = ChaosConfig {
            duplicate_prob: 1.0,
            ..ChaosConfig::from_seed(7)
        };
        let to = Endpoint::Proc { prog: 0, rank: 0 };
        for n in 0..100 {
            assert_eq!(cfg.extra_delays(n, to, &fwd(0, n)).len(), 1);
            assert_eq!(cfg.extra_delays(n, to, &resp(0, n)).len(), 2);
        }
    }

    /// One-shot directives must never be duplicated even at probability 1:
    /// a doubled `Answer` makes a rank send its data piece twice.
    #[test]
    fn one_shot_directives_are_never_duplicated() {
        let cfg = ChaosConfig {
            duplicate_prob: 1.0,
            ..ChaosConfig::from_seed(11)
        };
        let to = Endpoint::Proc { prog: 0, rank: 0 };
        for n in 0..100 {
            let one_shot = [
                CtrlMsg::Answer {
                    conn: ConnectionId(0),
                    req: RequestId(n),
                    answer: RepAnswer::Match(ts(1.0)),
                },
                CtrlMsg::AnswerBcast {
                    conn: ConnectionId(0),
                    req: RequestId(n),
                    answer: RepAnswer::NoMatch,
                },
                CtrlMsg::BuddyHelp {
                    conn: ConnectionId(0),
                    req: RequestId(n),
                    answer: RepAnswer::NoMatch,
                },
            ];
            for msg in one_shot {
                assert!(commutes(&msg) && !duplicable(&msg));
                assert_eq!(cfg.extra_delays(n, to, &msg).len(), 1);
            }
        }
    }

    #[test]
    fn delays_are_bounded() {
        let cfg = ChaosConfig {
            drop_prob: 1.0,
            ..ChaosConfig::from_seed(3)
        };
        let to = Endpoint::Rep { prog: 2 };
        for n in 0..100 {
            for d in cfg.extra_delays(n, to, &resp(1, n)) {
                assert!((0.0..=cfg.retry_delay + cfg.max_delay).contains(&d));
            }
        }
    }

    #[test]
    fn fifo_stream_never_reorders() {
        let mut state = ChaosState::new(ChaosConfig {
            drop_prob: 0.5,
            ..ChaosConfig::from_seed(11)
        });
        let to = Endpoint::Proc { prog: 1, rank: 0 };
        let mut last = f64::NEG_INFINITY;
        for (n, base) in (0..200).map(|i| (i, i as f64 * 0.001)) {
            let at = state.deliveries(base, to, &fwd(0, n))[0];
            assert!(at >= last, "stream reordered: {at} < {last}");
            assert!(at >= base, "delivered before emission");
            last = at;
        }
    }

    #[test]
    fn fifo_streams_are_independent_per_connection() {
        let mut state = ChaosState::new(ChaosConfig::from_seed(5));
        let to = Endpoint::Proc { prog: 0, rank: 0 };
        // A huge delay on conn 0 must not hold back conn 1's stream.
        let a = state.deliveries(0.0, to, &fwd(0, 0))[0];
        let b = state.deliveries(0.0, to, &fwd(1, 0))[0];
        assert!(a <= ChaosConfig::from_seed(5).retry_delay + 0.05);
        assert!(b <= ChaosConfig::from_seed(5).retry_delay + 0.05);
    }

    #[test]
    fn commutative_copies_ignore_watermarks() {
        let cfg = ChaosConfig {
            duplicate_prob: 1.0,
            ..ChaosConfig::from_seed(9)
        };
        let mut state = ChaosState::new(cfg);
        let to = Endpoint::Rep { prog: 0 };
        let times = state.deliveries(1.0, to, &resp(0, 0));
        assert_eq!(times.len(), 2);
        for t in times {
            assert!(t >= 1.0);
        }
    }
}
