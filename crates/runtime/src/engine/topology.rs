//! Validated multi-program coupling topologies.
//!
//! A [`Topology`] is the runtime-agnostic description of *who couples with
//! whom*: N programs (each with a process count and a rep), any number of
//! directed connections between exported and imported regions, and the
//! redistribution plan for each connection. Both runtimes — the
//! discrete-event simulator and the threaded fabric — are constructed from
//! the same `Topology`, which is itself built from a validated
//! [`couplink_config::Config`] plus the data decompositions the deployer
//! binds to each referenced region.

use couplink_config::{Config, RegionRef};
use couplink_layout::{Decomposition, RedistPlan};
use couplink_proto::ConnectionId;
use couplink_time::{MatchPolicy, Tolerance};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Why a configuration + decomposition binding does not form a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A connection references a region no decomposition was bound to.
    UnboundRegion(RegionRef),
    /// A bound decomposition's process count contradicts the program
    /// declaration.
    ProcsMismatch {
        /// Program name.
        program: String,
        /// Processes declared in the configuration.
        declared: usize,
        /// Processes implied by the bound decomposition.
        bound: usize,
    },
    /// A region appears as the importer of more than one connection.
    DoublyImportedRegion(RegionRef),
    /// A connection references a program the configuration does not declare.
    UnknownProgram(String),
    /// The exporter/importer decompositions of a connection cannot be
    /// redistributed into one another (e.g. different global grids).
    Layout(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnboundRegion(r) => write!(f, "no decomposition bound for {r}"),
            TopologyError::ProcsMismatch {
                program,
                declared,
                bound,
            } => write!(
                f,
                "program {program} declares {declared} processes but its bound \
                 decomposition implies {bound}"
            ),
            TopologyError::DoublyImportedRegion(r) => {
                write!(f, "region {r} imports from more than one connection")
            }
            TopologyError::UnknownProgram(p) => write!(f, "unknown program {p}"),
            TopologyError::Layout(msg) => write!(f, "incompatible decompositions: {msg}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// One exported region of a program: a name, a decomposition and the
/// connections it feeds (a region feeding several importers is the paper's
/// Figure 2 `P0.r1` case, served by one [`couplink_proto::MultiExport`]).
#[derive(Debug, Clone)]
pub struct ExportRegionTopo {
    /// Region name within the program.
    pub name: String,
    /// How the exporting program decomposes the region's grid.
    pub decomp: Decomposition,
    /// Connections fed by this region, in configuration order.
    pub conns: Vec<ConnectionId>,
}

/// One imported region of a program. Validation guarantees exactly one
/// connection per imported region.
#[derive(Debug, Clone)]
pub struct ImportRegionTopo {
    /// Region name within the program.
    pub name: String,
    /// How the importing program decomposes the region's grid.
    pub decomp: Decomposition,
    /// The single connection feeding this region.
    pub conn: ConnectionId,
}

/// One program of the topology.
#[derive(Debug, Clone)]
pub struct ProgramTopo {
    /// Program name.
    pub name: String,
    /// Number of coupled processes (the rep is extra, as in the paper).
    pub procs: usize,
    /// Regions this program exports, in first-reference order.
    pub exports: Vec<ExportRegionTopo>,
    /// Regions this program imports, in first-reference order.
    pub imports: Vec<ImportRegionTopo>,
}

impl ProgramTopo {
    /// Index of the exported region with this name.
    pub fn export_idx(&self, region: &str) -> Option<usize> {
        self.exports.iter().position(|r| r.name == region)
    }

    /// Index of the imported region with this name.
    pub fn import_idx(&self, region: &str) -> Option<usize> {
        self.imports.iter().position(|r| r.name == region)
    }
}

/// One directed connection between an exported and an imported region.
#[derive(Debug, Clone)]
pub struct ConnTopo {
    /// The connection's wire identifier (its index in [`Topology::conns`]).
    pub id: ConnectionId,
    /// Exporting program index.
    pub exporter_prog: usize,
    /// Exported region index within the exporting program's `exports`.
    pub exporter_region: usize,
    /// Importing program index.
    pub importer_prog: usize,
    /// Imported region index within the importing program's `imports`.
    pub importer_region: usize,
    /// Timestamp match policy.
    pub policy: MatchPolicy,
    /// Match tolerance.
    pub tolerance: Tolerance,
    /// Redistribution plan from the exporter to the importer decomposition.
    pub plan: Arc<RedistPlan>,
}

/// A validated multi-program coupling topology. See the module docs.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Programs, in configuration order.
    pub programs: Vec<ProgramTopo>,
    /// Connections, in configuration order; `conns[i].id == ConnectionId(i)`.
    pub conns: Vec<ConnTopo>,
}

impl Topology {
    /// Builds a topology from a validated configuration plus one bound
    /// decomposition per referenced region.
    pub fn from_config(
        config: &Config,
        bindings: &HashMap<RegionRef, Decomposition>,
    ) -> Result<Self, TopologyError> {
        let mut programs: Vec<ProgramTopo> = config
            .programs
            .iter()
            .map(|p| ProgramTopo {
                name: p.name.clone(),
                procs: p.procs,
                exports: Vec::new(),
                imports: Vec::new(),
            })
            .collect();
        let prog_idx: HashMap<&str, usize> = config
            .programs
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.as_str(), i))
            .collect();

        let lookup = |r: &RegionRef| -> Result<(usize, Decomposition), TopologyError> {
            let pi = *prog_idx
                .get(r.program.as_str())
                .ok_or_else(|| TopologyError::UnknownProgram(r.program.clone()))?;
            let d = bindings
                .get(r)
                .ok_or_else(|| TopologyError::UnboundRegion(r.clone()))?;
            let declared = config.programs[pi].procs;
            if d.procs() != declared {
                return Err(TopologyError::ProcsMismatch {
                    program: r.program.clone(),
                    declared,
                    bound: d.procs(),
                });
            }
            Ok((pi, *d))
        };

        let mut conns = Vec::with_capacity(config.connections.len());
        for (i, spec) in config.connections.iter().enumerate() {
            let id = ConnectionId(i as u32);
            let (ep, ed) = lookup(&spec.exporter)?;
            let (ip, idc) = lookup(&spec.importer)?;
            let plan =
                RedistPlan::build(ed, idc).map_err(|e| TopologyError::Layout(e.to_string()))?;

            let exporter_region = match programs[ep].export_idx(&spec.exporter.region) {
                Some(idx) => {
                    programs[ep].exports[idx].conns.push(id);
                    idx
                }
                None => {
                    programs[ep].exports.push(ExportRegionTopo {
                        name: spec.exporter.region.clone(),
                        decomp: ed,
                        conns: vec![id],
                    });
                    programs[ep].exports.len() - 1
                }
            };
            if programs[ip].import_idx(&spec.importer.region).is_some() {
                return Err(TopologyError::DoublyImportedRegion(spec.importer.clone()));
            }
            programs[ip].imports.push(ImportRegionTopo {
                name: spec.importer.region.clone(),
                decomp: idc,
                conn: id,
            });
            let importer_region = programs[ip].imports.len() - 1;

            conns.push(ConnTopo {
                id,
                exporter_prog: ep,
                exporter_region,
                importer_prog: ip,
                importer_region,
                policy: spec.policy,
                tolerance: spec.tolerance,
                plan: Arc::new(plan),
            });
        }
        Ok(Topology { programs, conns })
    }

    /// The classic two-program, one-connection topology (program 0 exports
    /// region `r` to program 1) used by the paper's single-pair experiments.
    pub fn pair(
        exporter: Decomposition,
        importer: Decomposition,
        policy: MatchPolicy,
        tolerance: Tolerance,
    ) -> Result<Self, TopologyError> {
        let plan = RedistPlan::build(exporter, importer)
            .map_err(|e| TopologyError::Layout(e.to_string()))?;
        let id = ConnectionId(0);
        Ok(Topology {
            programs: vec![
                ProgramTopo {
                    name: "exporter".into(),
                    procs: exporter.procs(),
                    exports: vec![ExportRegionTopo {
                        name: "r".into(),
                        decomp: exporter,
                        conns: vec![id],
                    }],
                    imports: Vec::new(),
                },
                ProgramTopo {
                    name: "importer".into(),
                    procs: importer.procs(),
                    exports: Vec::new(),
                    imports: vec![ImportRegionTopo {
                        name: "r".into(),
                        decomp: importer,
                        conn: id,
                    }],
                },
            ],
            conns: vec![ConnTopo {
                id,
                exporter_prog: 0,
                exporter_region: 0,
                importer_prog: 1,
                importer_region: 0,
                policy,
                tolerance,
                plan: Arc::new(plan),
            }],
        })
    }

    /// The connection behind a wire identifier.
    pub fn conn(&self, id: ConnectionId) -> &ConnTopo {
        &self.conns[id.0 as usize]
    }

    /// Program index by name.
    pub fn program_idx(&self, name: &str) -> Option<usize> {
        self.programs.iter().position(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use couplink_config::parse;
    use couplink_layout::Extent2;

    fn fig2ish() -> (Config, HashMap<RegionRef, Decomposition>) {
        let config = parse(
            "P0 c0 /bin/p0 2\nP1 c0 /bin/p1 1\nP2 c1 /bin/p2 1\n#\n\
             P0.r1 P1.r1 REGL 2.5\nP0.r1 P2.r3 REG 2.5\nP1.r2 P2.r1 REGU 1.0\n",
        )
        .unwrap();
        let grid = Extent2::new(8, 8);
        let mut b = HashMap::new();
        b.insert(
            RegionRef::new("P0", "r1"),
            Decomposition::row_block(grid, 2).unwrap(),
        );
        b.insert(
            RegionRef::new("P1", "r1"),
            Decomposition::row_block(grid, 1).unwrap(),
        );
        b.insert(
            RegionRef::new("P2", "r3"),
            Decomposition::row_block(grid, 1).unwrap(),
        );
        b.insert(
            RegionRef::new("P1", "r2"),
            Decomposition::row_block(grid, 1).unwrap(),
        );
        b.insert(
            RegionRef::new("P2", "r1"),
            Decomposition::row_block(grid, 1).unwrap(),
        );
        (config, b)
    }

    #[test]
    fn multi_connection_region_shares_one_export_entry() {
        let (config, b) = fig2ish();
        let topo = Topology::from_config(&config, &b).unwrap();
        assert_eq!(topo.programs.len(), 3);
        let p0 = &topo.programs[0];
        assert_eq!(p0.exports.len(), 1, "P0.r1 feeds two connections");
        assert_eq!(p0.exports[0].conns, vec![ConnectionId(0), ConnectionId(1)]);
        assert_eq!(topo.conns.len(), 3);
        assert_eq!(topo.conn(ConnectionId(2)).exporter_prog, 1);
        assert_eq!(topo.conn(ConnectionId(2)).importer_prog, 2);
        // P2 imports two distinct regions — legal; each has one connection.
        assert_eq!(topo.programs[2].imports.len(), 2);
    }

    #[test]
    fn unbound_region_rejected() {
        let (config, mut b) = fig2ish();
        b.remove(&RegionRef::new("P2", "r3"));
        let err = Topology::from_config(&config, &b).unwrap_err();
        assert_eq!(
            err,
            TopologyError::UnboundRegion(RegionRef::new("P2", "r3"))
        );
    }

    #[test]
    fn doubly_imported_region_rejected() {
        let config = parse(
            "A c0 /bin/a 1\nB c0 /bin/b 1\nC c0 /bin/c 1\n#\n\
             A.r C.r REGL 1.0\nB.r C.r REGL 1.0\n",
        )
        .unwrap();
        let grid = Extent2::new(4, 4);
        let d = Decomposition::row_block(grid, 1).unwrap();
        let mut b = HashMap::new();
        for (p, r) in [("A", "r"), ("B", "r"), ("C", "r")] {
            b.insert(RegionRef::new(p, r), d);
        }
        let err = Topology::from_config(&config, &b).unwrap_err();
        assert_eq!(
            err,
            TopologyError::DoublyImportedRegion(RegionRef::new("C", "r"))
        );
    }

    #[test]
    fn procs_mismatch_rejected() {
        let (config, mut b) = fig2ish();
        let grid = Extent2::new(8, 8);
        b.insert(
            RegionRef::new("P0", "r1"),
            Decomposition::row_block(grid, 4).unwrap(),
        );
        let err = Topology::from_config(&config, &b).unwrap_err();
        assert_eq!(
            err,
            TopologyError::ProcsMismatch {
                program: "P0".into(),
                declared: 2,
                bound: 4
            }
        );
    }

    /// The parser already rejects a connection naming an undeclared
    /// program, so reach the validator's own check by deleting a program
    /// from an otherwise-valid parsed configuration (as a programmatic
    /// caller assembling a `Config` by hand could).
    #[test]
    fn unknown_program_rejected() {
        let (mut config, b) = fig2ish();
        config.programs.retain(|p| p.name != "P2");
        let err = Topology::from_config(&config, &b).unwrap_err();
        assert_eq!(err, TopologyError::UnknownProgram("P2".into()));
    }

    /// Decompositions on different global grids cannot be redistributed
    /// into one another.
    #[test]
    fn incompatible_grids_rejected_as_layout_error() {
        let (config, mut b) = fig2ish();
        b.insert(
            RegionRef::new("P1", "r1"),
            Decomposition::row_block(Extent2::new(4, 4), 1).unwrap(),
        );
        let err = Topology::from_config(&config, &b).unwrap_err();
        assert!(
            matches!(err, TopologyError::Layout(_)),
            "expected Layout, got {err:?}"
        );
    }
}
