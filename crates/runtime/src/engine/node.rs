//! Per-process and per-rep protocol nodes.
//!
//! Each node wraps the sans-IO machines from `couplink-proto` for one
//! process (or rep) of one program and translates their effects into
//! [`Outgoing`] messages in a fixed, runtime-independent order. The drivers
//! (discrete-event simulator, threaded fabric) only move these messages and
//! execute data transfers; every protocol decision lives here.

use super::topology::Topology;
use super::{tree, Endpoint, Outgoing};
use couplink_metrics::EngineMetrics;
use couplink_proto::{
    CtrlMsg, ExportAction, ExportPort, ImportError, ImportPort, ImportState, MultiExport,
    PortError, ProcResponse, Rank, RepAnswer, RepError, RequestId, Trace,
};
use couplink_time::Timestamp;
use std::collections::HashMap;
use std::sync::Arc;

/// Any protocol failure surfaced by a node.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// An export port rejected an input.
    Port(PortError),
    /// A rep machine rejected an input (e.g. a collective violation).
    Rep(RepError),
    /// An import port rejected an input.
    Import(ImportError),
    /// A message arrived at a node that cannot handle it.
    UnexpectedMessage(&'static str),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Port(e) => write!(f, "export port: {e}"),
            EngineError::Rep(e) => write!(f, "rep: {e}"),
            EngineError::Import(e) => write!(f, "import port: {e}"),
            EngineError::UnexpectedMessage(what) => write!(f, "unexpected message: {what}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<PortError> for EngineError {
    fn from(e: PortError) -> Self {
        EngineError::Port(e)
    }
}
impl From<RepError> for EngineError {
    fn from(e: RepError) -> Self {
        EngineError::Rep(e)
    }
}
impl From<ImportError> for EngineError {
    fn from(e: ImportError) -> Self {
        EngineError::Import(e)
    }
}

/// One exported region's state on one process.
#[derive(Debug)]
struct ExportRegionState {
    /// The per-connection ports behind one shared object store.
    multi: MultiExport,
    /// Global connection ids, parallel to the multi-export's ports.
    conns: Vec<couplink_proto::ConnectionId>,
    /// Optional per-connection event traces (Figure 5-style).
    traces: Vec<Option<Trace>>,
    /// Bytes of this rank's piece of the region (one buffered object).
    bytes: usize,
}

/// Effects of one export/request/buddy-help step on an export node.
///
/// `msgs` must be delivered (or scheduled) **in order** before `freed` is
/// applied to the object store: sends reference buffered objects, so a
/// freed object may be one that was just sent.
#[derive(Debug, Default)]
pub struct ExportFx {
    /// Messages to move, in emission order.
    pub msgs: Vec<Outgoing>,
    /// Whether the exported object must be copied into the region's shared
    /// store (export steps only; at most one copy per region per export).
    pub copy: bool,
    /// Timestamps whose shared copy is dead on every connection.
    pub freed: Vec<Timestamp>,
    /// Per-connection actions of an export step, in region connection
    /// order (empty for request/buddy-help steps).
    pub actions: Vec<(couplink_proto::ConnectionId, ExportAction)>,
}

/// The export side of one process: every region it exports, each with its
/// per-connection ports and shared-store refcounting.
#[derive(Debug)]
pub struct ExportNode {
    prog: usize,
    rank: usize,
    regions: Vec<ExportRegionState>,
    /// Region index serving each connection.
    by_conn: HashMap<couplink_proto::ConnectionId, (usize, usize)>,
    /// Request timestamps remembered for traced connections (buddy-help
    /// trace lines report the requested timestamp, which the wire message
    /// does not carry).
    req_ts: HashMap<(couplink_proto::ConnectionId, RequestId), Timestamp>,
    /// Run-wide instrumentation shared with every other node.
    metrics: Arc<EngineMetrics>,
}

impl ExportNode {
    /// Builds the export node for process `rank` of program `prog`.
    pub fn new(topo: &Topology, prog: usize, rank: usize, capacity: Option<usize>) -> Self {
        let mut regions = Vec::new();
        let mut by_conn = HashMap::new();
        for (ri, region) in topo.programs[prog].exports.iter().enumerate() {
            let mut ports = Vec::new();
            for (slot, &cid) in region.conns.iter().enumerate() {
                let ct = topo.conn(cid);
                let port = match capacity {
                    Some(cap) => ExportPort::with_capacity(cid, ct.policy, ct.tolerance, cap),
                    None => ExportPort::new(cid, ct.policy, ct.tolerance),
                };
                ports.push(port);
                by_conn.insert(cid, (ri, slot));
            }
            let n = ports.len();
            regions.push(ExportRegionState {
                multi: MultiExport::new(ports),
                conns: region.conns.clone(),
                traces: vec![None; n],
                bytes: region.decomp.owned(rank).cells() * std::mem::size_of::<f64>(),
            });
        }
        ExportNode {
            prog,
            rank,
            regions,
            by_conn,
            req_ts: HashMap::new(),
            metrics: Arc::new(EngineMetrics::new()),
        }
    }

    /// Shares run-wide instrumentation with this node (a private instance is
    /// used until then, so counting is always unconditional).
    pub fn set_metrics(&mut self, metrics: Arc<EngineMetrics>) {
        self.metrics = metrics;
    }

    /// Enables event tracing for one connection of this node.
    pub fn enable_trace(&mut self, conn: couplink_proto::ConnectionId) {
        if let Some(&(ri, slot)) = self.by_conn.get(&conn) {
            self.regions[ri].traces[slot] = Some(Trace::new());
        }
    }

    /// Takes the recorded trace for a connection, if tracing was enabled.
    pub fn take_trace(&mut self, conn: couplink_proto::ConnectionId) -> Option<Trace> {
        let &(ri, slot) = self.by_conn.get(&conn)?;
        self.regions[ri].traces[slot].take()
    }

    /// The region index serving a connection on this node.
    pub fn region_of(&self, conn: couplink_proto::ConnectionId) -> Option<usize> {
        self.by_conn.get(&conn).map(|&(ri, _)| ri)
    }

    /// Arms the mutation-testing hook on every port of this node: exports
    /// equal to a known buddy-help match are unsoundly skipped. Used only by
    /// the simulation-test harness to prove the oracles catch a broken
    /// pruning rule (see [`ExportPort::set_unsound_help_skip`]).
    pub fn arm_unsound_help_skip(&mut self) {
        for region in &mut self.regions {
            for slot in 0..region.multi.connections() {
                region.multi.port_mut(slot).set_unsound_help_skip(true);
            }
        }
    }

    /// Arms the second mutation-testing hook on every port of this node:
    /// buddy-help announcements whose match was already exported locally are
    /// unsoundly dropped without sending the piece (see
    /// [`ExportPort::set_unsound_stale_skip`]).
    pub fn arm_unsound_stale_skip(&mut self) {
        for region in &mut self.regions {
            for slot in 0..region.multi.connections() {
                region.multi.port_mut(slot).set_unsound_stale_skip(true);
            }
        }
    }

    /// Number of regions this node exports.
    pub fn regions(&self) -> usize {
        self.regions.len()
    }

    /// Statistics of the port serving `conn`.
    pub fn port_stats(&self, conn: couplink_proto::ConnectionId) -> &couplink_proto::ExportStats {
        let &(ri, slot) = self.by_conn.get(&conn).expect("connection served here");
        self.regions[ri].multi.port(slot).stats()
    }

    /// Objects currently held in a region's shared store.
    pub fn shared_buffered_len(&self, region: usize) -> usize {
        self.regions[region].multi.shared_buffered_len()
    }

    /// Objects buffered on one connection's port.
    pub fn conn_buffered_len(&self, conn: couplink_proto::ConnectionId) -> usize {
        let &(ri, slot) = self.by_conn.get(&conn).expect("connection served here");
        self.regions[ri].multi.port(slot).buffered_len()
    }

    /// The process exports one object on region `region`.
    ///
    /// [`PortError::BufferFull`] is non-consuming: the caller may retry the
    /// same export after buffer space frees (threaded runtime blocks; the
    /// simulator re-schedules on the next free).
    pub fn on_export(&mut self, region: usize, t: Timestamp) -> Result<ExportFx, EngineError> {
        let state = &mut self.regions[region];
        let fx = match state.multi.on_export(t) {
            Err(e @ PortError::BufferFull { .. }) => {
                self.metrics.buffer_stalls.inc();
                return Err(e.into());
            }
            other => other?,
        };
        self.metrics.export_calls.inc();
        if fx.copy {
            self.metrics.memcpy_paid.inc();
            self.metrics.bytes_buffered.add(state.bytes as u64);
            self.metrics.buffered_objects.add(1);
        } else {
            self.metrics.memcpy_skipped.inc();
        }
        self.metrics.buffered_objects.sub(fx.freed.len() as u64);
        self.metrics
            .occupancy
            .observe(state.multi.shared_buffered_len() as u64);
        let mut out = ExportFx {
            copy: fx.copy,
            freed: fx.freed.clone(),
            ..Default::default()
        };
        for (slot, pfx) in fx.per_conn.iter().enumerate() {
            let cid = state.conns[slot];
            if let Some(trace) = state.traces[slot].as_mut() {
                trace.record_export(t, pfx);
            }
            let action = pfx.action.expect("on_export decides an action");
            out.actions.push((cid, action));
            if let ExportAction::BufferAndSend { request } = action {
                out.msgs.push(Outgoing::Transfer {
                    conn: cid,
                    req: request,
                    m: t,
                });
            }
        }
        // All local resolutions are reported to the rep after the export's
        // own send; matched objects then go out (same order the pair
        // simulator used, so single-connection schedules are unchanged).
        for (slot, pfx) in fx.per_conn.iter().enumerate() {
            let cid = state.conns[slot];
            for r in &pfx.resolutions {
                out.msgs.push(Outgoing::Ctrl {
                    to: Endpoint::Rep { prog: self.prog },
                    msg: CtrlMsg::Response {
                        conn: cid,
                        req: r.request,
                        rank: Rank(self.rank as u32),
                        resp: answer_to_response(r.answer),
                    },
                });
            }
        }
        for (slot, pfx) in fx.per_conn.iter().enumerate() {
            let cid = state.conns[slot];
            for r in &pfx.resolutions {
                if let Some(m) = r.send {
                    out.msgs.push(Outgoing::Transfer {
                        conn: cid,
                        req: r.request,
                        m,
                    });
                }
            }
        }
        Ok(out)
    }

    /// A forwarded import request reaches this process.
    pub fn on_request(
        &mut self,
        conn: couplink_proto::ConnectionId,
        req: RequestId,
        ts: Timestamp,
    ) -> Result<ExportFx, EngineError> {
        let &(ri, slot) = self
            .by_conn
            .get(&conn)
            .ok_or(EngineError::UnexpectedMessage(
                "request for foreign connection",
            ))?;
        let state = &mut self.regions[ri];
        let (fx, freed) = state.multi.on_request(slot, req, ts)?;
        self.metrics.buffered_objects.sub(freed.len() as u64);
        if let Some(trace) = state.traces[slot].as_mut() {
            trace.record_request(ts, &fx);
            self.req_ts.insert((conn, req), ts);
        }
        let mut out = ExportFx {
            freed,
            ..Default::default()
        };
        out.msgs.push(Outgoing::Ctrl {
            to: Endpoint::Rep { prog: self.prog },
            msg: CtrlMsg::Response {
                conn,
                req,
                rank: Rank(self.rank as u32),
                resp: fx.response,
            },
        });
        if let Some(m) = fx.send {
            out.msgs.push(Outgoing::Transfer { conn, req, m });
        }
        Ok(out)
    }

    /// A buddy-help message reaches this process.
    pub fn on_buddy_help(
        &mut self,
        conn: couplink_proto::ConnectionId,
        req: RequestId,
        answer: RepAnswer,
    ) -> Result<ExportFx, EngineError> {
        let &(ri, slot) = self
            .by_conn
            .get(&conn)
            .ok_or(EngineError::UnexpectedMessage(
                "buddy-help for foreign connection",
            ))?;
        let state = &mut self.regions[ri];
        let (fx, freed) = state.multi.on_buddy_help(slot, req, answer)?;
        self.metrics.buffered_objects.sub(freed.len() as u64);
        if let Some(trace) = state.traces[slot].as_mut() {
            if let Some(x) = self.req_ts.remove(&(conn, req)) {
                trace.record_buddy_help(x, req, answer, &fx);
            }
        }
        let mut out = ExportFx {
            freed,
            ..Default::default()
        };
        if let Some(m) = fx.send {
            out.msgs.push(Outgoing::Transfer { conn, req, m });
        }
        Ok(out)
    }
}

fn answer_to_response(a: RepAnswer) -> ProcResponse {
    match a {
        RepAnswer::Match(m) => ProcResponse::Match(m),
        RepAnswer::NoMatch => ProcResponse::NoMatch,
    }
}

/// One program's rep: aggregates collective imports and exports for every
/// connection the program participates in (the paper's one-extra-process-
/// per-program design).
#[derive(Debug)]
pub struct RepNode {
    prog: usize,
    exp: HashMap<couplink_proto::ConnectionId, couplink_proto::ExporterRep>,
    imp: HashMap<couplink_proto::ConnectionId, couplink_proto::ImporterRep>,
    /// Whether buddy-help announcements are enabled (mirrors the exporter
    /// reps' own flag; needed to decide hierarchical help broadcasts).
    buddy_help: bool,
    /// Route collectives down the k-ary distribution tree ([`super::tree`])
    /// instead of flat per-rank fan-out.
    hierarchical: bool,
}

impl RepNode {
    /// Builds the rep for program `prog`.
    pub fn new(topo: &Topology, prog: usize, buddy_help: bool, hierarchical: bool) -> Self {
        let mut exp = HashMap::new();
        let mut imp = HashMap::new();
        for region in &topo.programs[prog].exports {
            for &cid in &region.conns {
                exp.insert(
                    cid,
                    couplink_proto::ExporterRep::new(topo.programs[prog].procs, buddy_help),
                );
            }
        }
        for region in &topo.programs[prog].imports {
            imp.insert(
                region.conn,
                couplink_proto::ImporterRep::new(topo.programs[prog].procs),
            );
        }
        RepNode {
            prog,
            exp,
            imp,
            buddy_help,
            hierarchical,
        }
    }

    /// Handles one control message addressed to this rep.
    pub fn on_msg(&mut self, topo: &Topology, msg: CtrlMsg) -> Result<Vec<Outgoing>, EngineError> {
        let mut out = Vec::new();
        match msg {
            CtrlMsg::ImportCall { conn, rank, ts } => {
                let rep = self
                    .imp
                    .get_mut(&conn)
                    .ok_or(EngineError::UnexpectedMessage(
                        "import call at non-importer",
                    ))?;
                let fx = rep.on_import_call(rank, ts)?;
                if let Some((req, ts)) = fx.request {
                    out.push(Outgoing::Ctrl {
                        to: Endpoint::Rep {
                            prog: topo.conn(conn).exporter_prog,
                        },
                        msg: CtrlMsg::ImportRequest { conn, req, ts },
                    });
                }
                // Hierarchical mode broadcasts each answer down the tree
                // exactly once, when it arrives; the call-gated per-rank
                // deliveries here would duplicate that (and depend on call
                // arrival order, which is timing).
                if !self.hierarchical {
                    self.push_delivers(topo, conn, fx.deliver, &mut out);
                }
            }
            CtrlMsg::Answer { conn, req, answer } => {
                let rep = self
                    .imp
                    .get_mut(&conn)
                    .ok_or(EngineError::UnexpectedMessage("answer at non-importer"))?;
                let fx = rep.on_answer(req, answer)?;
                if self.hierarchical {
                    // One coalesced frame per tree child; each rank applies
                    // it and relays to its own subtree. Ranks that have not
                    // called import yet stash the early answer in their
                    // import port.
                    for rank in tree::root_children(topo.programs[self.prog].procs) {
                        out.push(Outgoing::Ctrl {
                            to: Endpoint::Proc {
                                prog: self.prog,
                                rank,
                            },
                            msg: CtrlMsg::Coalesced {
                                conn,
                                req,
                                answer,
                                bcast: true,
                                help: false,
                            },
                        });
                    }
                } else {
                    self.push_delivers(topo, conn, fx.deliver, &mut out);
                }
            }
            CtrlMsg::ImportRequest { conn, req, ts } => {
                let rep = self
                    .exp
                    .get_mut(&conn)
                    .ok_or(EngineError::UnexpectedMessage("request at non-exporter"))?;
                let fx = rep.on_import_request(req, ts)?;
                self.push_exp_fx(topo, conn, fx, &mut out);
            }
            CtrlMsg::Response {
                conn,
                req,
                rank,
                resp,
            } => {
                let rep = self
                    .exp
                    .get_mut(&conn)
                    .ok_or(EngineError::UnexpectedMessage("response at non-exporter"))?;
                let fx = rep.on_response(rank, req, resp)?;
                self.push_exp_fx(topo, conn, fx, &mut out);
            }
            CtrlMsg::ForwardRequest { .. }
            | CtrlMsg::BuddyHelp { .. }
            | CtrlMsg::AnswerBcast { .. }
            | CtrlMsg::Coalesced { .. } => {
                return Err(EngineError::UnexpectedMessage("process message at rep"));
            }
            // Acks and heartbeats are consumed by the runtimes' reliability
            // layer before node dispatch; one reaching a node is a bug.
            CtrlMsg::Ack { .. } | CtrlMsg::Heartbeat { .. } => {
                return Err(EngineError::UnexpectedMessage("link-layer message at rep"));
            }
        }
        Ok(out)
    }

    /// Rebuilds a successor rep's aggregation state by replaying the
    /// crashed rep's consumed-message journal in consumption order,
    /// *discarding* the regenerated outgoing traffic: everything the dead
    /// rep consumed it had also already emitted responses for (consumption
    /// and emission are one atomic step in both runtimes), and any copies
    /// still in flight are deduplicated by the reliability layer. The
    /// journal stands in for the paper-style member re-announcements — it
    /// carries the same per-member information, already collectively
    /// ordered.
    pub fn replay(&mut self, topo: &Topology, journal: &[CtrlMsg]) -> Result<(), EngineError> {
        for msg in journal {
            let _regenerated = self.on_msg(topo, *msg)?;
        }
        Ok(())
    }

    fn push_delivers(
        &self,
        _topo: &Topology,
        conn: couplink_proto::ConnectionId,
        deliver: Vec<(Rank, RequestId, RepAnswer)>,
        out: &mut Vec<Outgoing>,
    ) {
        for (rank, req, answer) in deliver {
            out.push(Outgoing::Ctrl {
                to: Endpoint::Proc {
                    prog: self.prog,
                    rank: rank.0 as usize,
                },
                msg: CtrlMsg::AnswerBcast { conn, req, answer },
            });
        }
    }

    fn push_exp_fx(
        &self,
        topo: &Topology,
        conn: couplink_proto::ConnectionId,
        fx: couplink_proto::rep::RepEffects,
        out: &mut Vec<Outgoing>,
    ) {
        let ct = topo.conn(conn);
        let procs = topo.programs[self.prog].procs;
        if let Some((req, ts)) = fx.forward {
            let ranks = if self.hierarchical {
                tree::root_children(procs)
            } else {
                0..procs
            };
            for rank in ranks {
                out.push(Outgoing::Ctrl {
                    to: Endpoint::Proc {
                        prog: self.prog,
                        rank,
                    },
                    msg: CtrlMsg::ForwardRequest { conn, req, ts },
                });
            }
        }
        if let Some((req, answer)) = fx.answer {
            out.push(Outgoing::Ctrl {
                to: Endpoint::Rep {
                    prog: ct.importer_prog,
                },
                msg: CtrlMsg::Answer { conn, req, answer },
            });
            // Hierarchical buddy-help is announced to every member at the
            // moment the answer is decided — one coalesced frame per tree
            // child, relayed down — instead of per-straggler messages whose
            // set depends on response arrival timing. Members that already
            // resolved the request shrug the announcement off.
            if self.hierarchical && self.buddy_help {
                for rank in tree::root_children(procs) {
                    out.push(Outgoing::Ctrl {
                        to: Endpoint::Proc {
                            prog: self.prog,
                            rank,
                        },
                        msg: CtrlMsg::Coalesced {
                            conn,
                            req,
                            answer,
                            bcast: false,
                            help: true,
                        },
                    });
                }
            }
        }
        if !self.hierarchical {
            for (rank, req, answer) in fx.buddy_help {
                out.push(Outgoing::Ctrl {
                    to: Endpoint::Proc {
                        prog: self.prog,
                        rank: rank.0 as usize,
                    },
                    msg: CtrlMsg::BuddyHelp { conn, req, answer },
                });
            }
        }
    }
}

/// The import side of one process: one [`ImportPort`] per imported region.
#[derive(Debug)]
pub struct ImportNode {
    prog: usize,
    rank: usize,
    /// Ports in program import-region order, keyed by connection.
    ports: HashMap<couplink_proto::ConnectionId, ImportPort>,
    /// Run-wide instrumentation shared with every other node.
    metrics: Arc<EngineMetrics>,
}

impl ImportNode {
    /// Builds the import node for process `rank` of program `prog`.
    pub fn new(topo: &Topology, prog: usize, rank: usize) -> Self {
        let mut ports = HashMap::new();
        for region in &topo.programs[prog].imports {
            let ct = topo.conn(region.conn);
            let expected = ct.plan.recvs_to(rank).count();
            ports.insert(region.conn, ImportPort::new(expected));
        }
        ImportNode {
            prog,
            rank,
            ports,
            metrics: Arc::new(EngineMetrics::new()),
        }
    }

    /// Shares run-wide instrumentation with this node (a private instance is
    /// used until then, so counting is always unconditional).
    pub fn set_metrics(&mut self, metrics: Arc<EngineMetrics>) {
        self.metrics = metrics;
    }

    /// Starts a collective import on one connection. Returns the request id
    /// and the import-call message for this program's rep.
    pub fn begin_import(
        &mut self,
        conn: couplink_proto::ConnectionId,
        ts: Timestamp,
    ) -> Result<(RequestId, Outgoing), EngineError> {
        let port = self
            .ports
            .get_mut(&conn)
            .ok_or(EngineError::UnexpectedMessage(
                "import on foreign connection",
            ))?;
        let req = port.begin_import(ts)?;
        self.metrics.import_calls.inc();
        let msg = Outgoing::Ctrl {
            to: Endpoint::Rep { prog: self.prog },
            msg: CtrlMsg::ImportCall {
                conn,
                rank: Rank(self.rank as u32),
                ts,
            },
        };
        Ok((req, msg))
    }

    /// The rep's broadcast answer arrives.
    pub fn on_answer(
        &mut self,
        conn: couplink_proto::ConnectionId,
        req: RequestId,
        answer: RepAnswer,
    ) -> Result<(), EngineError> {
        let port = self
            .ports
            .get_mut(&conn)
            .ok_or(EngineError::UnexpectedMessage(
                "answer on foreign connection",
            ))?;
        port.on_answer(req, answer)?;
        Ok(())
    }

    /// One piece of matched data arrives.
    pub fn on_piece(
        &mut self,
        conn: couplink_proto::ConnectionId,
        req: RequestId,
    ) -> Result<(), EngineError> {
        let port = self
            .ports
            .get_mut(&conn)
            .ok_or(EngineError::UnexpectedMessage(
                "piece on foreign connection",
            ))?;
        port.on_piece(req)?;
        Ok(())
    }

    /// Current state of one connection's import.
    pub fn state(&self, conn: couplink_proto::ConnectionId) -> Option<ImportState> {
        self.ports.get(&conn).map(|p| p.state())
    }

    /// Completes the finished import, returning its collective answer.
    pub fn finish(&mut self, conn: couplink_proto::ConnectionId) -> Option<RepAnswer> {
        self.ports.get_mut(&conn)?.finish()
    }
}
