//! The runtime-agnostic coupling engine.
//!
//! The paper's protocol — collective import requests aggregated by a rep,
//! the five legal response sets, buddy-help, acceptable-region pruning — is
//! implemented once, here, as message-passing between small *nodes*:
//!
//! - [`ExportNode`]: one per exporting process; all its exported regions,
//!   each region one [`couplink_proto::MultiExport`] (one port per
//!   connection over one shared object store).
//! - [`RepNode`]: one per program; aggregates collective import calls and
//!   export responses for every connection the program touches.
//! - [`ImportNode`]: one per importing process; one
//!   [`couplink_proto::ImportPort`] per imported region.
//!
//! Nodes consume [`couplink_proto::CtrlMsg`] values and emit [`Outgoing`]
//! messages in a deterministic order. What *varies* between runtimes is only
//! how messages move and what time means, captured by two traits:
//!
//! - [`Transport`]: delivers a control message to an [`Endpoint`] and
//!   executes a data transfer (expanding it into per-destination pieces via
//!   the connection's redistribution plan). The discrete-event simulator
//!   schedules events with modelled latencies; the threaded fabric sends on
//!   channels.
//! - [`Clock`]: reads the current time — virtual seconds in the simulator,
//!   wall-clock in the fabric — so shared code can stamp outcomes.
//!
//! The topology itself ([`Topology`]) is runtime-neutral: N programs, any
//! acyclic-or-cyclic set of connections, multi-importer export regions.

pub mod chaos;
pub mod node;
pub mod oracle;
pub mod reliable;
pub mod topology;
pub mod tree;

pub use chaos::{ChaosConfig, ChaosState, CrashFault, CrashTarget};
pub use node::{EngineError, ExportFx, ExportNode, ImportNode, RepNode};
pub use oracle::OracleViolation;
pub use reliable::{Expiry, MemWal, Reliability, RetryPolicy, Wal, WalRecord, WireMeta};
pub use topology::{
    ConnTopo, ExportRegionTopo, ImportRegionTopo, ProgramTopo, Topology, TopologyError,
};

use couplink_metrics::CtrlClass;
use couplink_proto::{ConnectionId, CtrlMsg, RequestId};
use couplink_time::Timestamp;

/// Classifies a control message for instrumentation ([`CtrlClass`] lives in
/// `couplink-metrics`, which knows nothing about the protocol types).
pub fn ctrl_class(msg: &CtrlMsg) -> CtrlClass {
    match msg {
        CtrlMsg::ImportCall { .. } => CtrlClass::ImportCall,
        CtrlMsg::ImportRequest { .. } => CtrlClass::ImportRequest,
        CtrlMsg::ForwardRequest { .. } => CtrlClass::ForwardRequest,
        CtrlMsg::Response { .. } => CtrlClass::Response,
        CtrlMsg::BuddyHelp { .. } => CtrlClass::BuddyHelp,
        CtrlMsg::Answer { .. } => CtrlClass::Answer,
        CtrlMsg::AnswerBcast { .. } => CtrlClass::AnswerBcast,
        // A coalesced tree frame is classed by its dominant role: the
        // importer-side answer broadcast when present, otherwise the folded
        // buddy-help announcement.
        CtrlMsg::Coalesced { bcast: true, .. } => CtrlClass::AnswerBcast,
        CtrlMsg::Coalesced { .. } => CtrlClass::BuddyHelp,
        CtrlMsg::Ack { .. } => CtrlClass::Ack,
        CtrlMsg::Heartbeat { .. } => CtrlClass::Heartbeat,
    }
}

/// Where a control message is headed. The `Ord` impl gives the reliability
/// layer a deterministic link iteration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Endpoint {
    /// A coupled process of a program.
    Proc {
        /// Program index in the topology.
        prog: usize,
        /// Process rank within the program.
        rank: usize,
    },
    /// A program's rep process.
    Rep {
        /// Program index in the topology.
        prog: usize,
    },
}

/// One message a node wants moved.
#[derive(Debug, Clone, PartialEq)]
pub enum Outgoing {
    /// A control message for an endpoint.
    Ctrl {
        /// Destination.
        to: Endpoint,
        /// The message.
        msg: CtrlMsg,
    },
    /// A matched object must be transferred from the emitting process to
    /// the connection's importer. The transport expands this into one piece
    /// per destination rank using the connection's redistribution plan.
    Transfer {
        /// The connection whose match is being served.
        conn: ConnectionId,
        /// The request the transfer answers.
        req: RequestId,
        /// Timestamp of the matched object.
        m: Timestamp,
    },
}

/// How messages move for one runtime. Implementations are cheap views
/// carrying whatever context the runtime needs (event queue + cost model,
/// or channel handles + object stores).
pub trait Transport {
    /// The runtime's failure type.
    type Error;

    /// Moves one control message to its endpoint.
    fn ctrl(&mut self, to: Endpoint, msg: CtrlMsg) -> Result<(), Self::Error>;

    /// Executes one data transfer emitted by `from`.
    fn transfer(
        &mut self,
        from: Endpoint,
        conn: ConnectionId,
        req: RequestId,
        m: Timestamp,
    ) -> Result<(), Self::Error>;
}

/// Delivers every outgoing message of a node step through a transport, in
/// emission order.
pub fn deliver_all<T: Transport>(
    transport: &mut T,
    from: Endpoint,
    msgs: Vec<Outgoing>,
) -> Result<(), T::Error> {
    for m in msgs {
        match m {
            Outgoing::Ctrl { to, msg } => transport.ctrl(to, msg)?,
            Outgoing::Transfer { conn, req, m } => transport.transfer(from, conn, req, m)?,
        }
    }
    Ok(())
}

/// What time means for one runtime: virtual seconds in the simulator,
/// wall-clock seconds in the threaded fabric.
pub trait Clock {
    /// Seconds since the runtime's epoch.
    fn now(&self) -> f64;
}

/// A clock reading a fixed value (useful for tests and for runtimes that
/// advance time externally).
#[derive(Debug, Clone, Copy)]
pub struct FixedClock(pub f64);

impl Clock for FixedClock {
    fn now(&self) -> f64 {
        self.0
    }
}
