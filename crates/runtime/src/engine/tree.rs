//! The deterministic k-ary distribution tree used by hierarchical rep
//! fan-out.
//!
//! Every runtime derives the tree from the validated [`super::Topology`]
//! alone — rank count in, edge set out — so the DES, the threaded fabric
//! and every socket-transport process build the *identical* tree without
//! exchanging a single message. The rep is a virtual root whose children
//! are ranks `0..min(k, n)` in rank order; rank `r`'s children are the
//! contiguous block `[k·r + k, k·r + 2k) ∩ [0, n)`. Equivalently,
//! `parent(c) = c/k − 1` for `c ≥ k`: a plain shifted k-ary heap layout,
//! chosen so membership tests and child enumeration are O(1) arithmetic
//! with no per-node state.
//!
//! Properties the property tests pin down (`crates/runtime/tests`):
//! connected (every rank is reached from the root), acyclic (each child's
//! parent index is strictly smaller), deterministic (pure functions of
//! `(n, k)`), and depth `ceil(log_k(n))`-ish — the collective latency and
//! per-node send count are both O(k·log_k n) instead of the flat O(n).

use std::ops::Range;

/// Fan-out of the distribution tree. Four children per node keeps the
/// depth at 3 hops up to 84 ranks and 4 hops up to 340 — comfortably past
/// the paper's production scales — while bounding any single node's
/// per-collective send count at 4.
pub const BRANCH: usize = 4;

/// The rep's (virtual root's) children: ranks `0..min(k, n)`.
pub fn root_children(n: usize) -> Range<usize> {
    0..n.min(BRANCH)
}

/// The subtree children of `rank` in an `n`-rank program:
/// `[k·rank + k, k·rank + 2k) ∩ [0, n)`.
pub fn children(rank: usize, n: usize) -> Range<usize> {
    let lo = (BRANCH * rank + BRANCH).min(n);
    let hi = (BRANCH * rank + 2 * BRANCH).min(n);
    lo..hi
}

/// The tree parent of `rank` (`None` for the root's direct children,
/// whose parent is the rep itself).
pub fn parent(rank: usize) -> Option<usize> {
    if rank < BRANCH {
        None
    } else {
        Some(rank / BRANCH - 1)
    }
}

/// Relay hops from the rep to `rank`, counting the rep→child edge as 1.
pub fn depth_of(rank: usize) -> usize {
    let mut d = 1;
    let mut r = rank;
    while let Some(p) = parent(r) {
        d += 1;
        r = p;
    }
    d
}

/// Tree depth for an `n`-rank program: the maximum hop count from the rep
/// to any rank (0 when there are no ranks).
pub fn depth(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        depth_of(n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn children_and_parent_are_inverse() {
        for n in [1usize, 2, 4, 5, 8, 21, 32, 64, 128, 341] {
            for rank in 0..n {
                for child in children(rank, n) {
                    assert_eq!(parent(child), Some(rank), "n={n} rank={rank}");
                }
                match parent(rank) {
                    None => assert!(root_children(n).contains(&rank)),
                    Some(p) => {
                        assert!(p < rank, "parents precede children");
                        assert!(children(p, n).contains(&rank));
                    }
                }
            }
        }
    }

    #[test]
    fn every_rank_is_covered_exactly_once() {
        for n in [1usize, 3, 4, 5, 16, 100, 128] {
            let mut seen = vec![0usize; n];
            for r in root_children(n) {
                seen[r] += 1;
            }
            for rank in 0..n {
                for c in children(rank, n) {
                    seen[c] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "n={n}: {seen:?}");
        }
    }

    #[test]
    fn depth_grows_logarithmically() {
        assert_eq!(depth(0), 0);
        assert_eq!(depth(1), 1);
        assert_eq!(depth(4), 1);
        assert_eq!(depth(5), 2);
        assert_eq!(depth(20), 2);
        assert_eq!(depth(21), 3);
        assert_eq!(depth(84), 3);
        assert_eq!(depth(85), 4);
        assert_eq!(depth(128), 4);
    }
}
