//! Deterministic discrete-event simulation of one exporter→importer coupled
//! pair — the configuration behind every Figure-4 style experiment.
//!
//! The simulated world matches the paper's micro-benchmark: an exporting
//! program with `E` processes (one of which may be artificially slowed — the
//! paper's `p_s`), an importing program with `I` processes, one connection
//! with a match policy and tolerance, and strictly periodic export/import
//! timestamp schedules. Compute phases advance the virtual clock by
//! configurable per-rank amounts; framework buffering charges
//! `CostModel::memcpy_time` for the process's piece of the distributed
//! array; control and data messages incur latency/bandwidth costs.
//!
//! Since the engine extraction this type is a thin adapter: it builds the
//! two-program [`crate::engine::Topology`] and runs it on the generic
//! [`crate::des::topo::TopologySim`], whose event schedule for pair
//! topologies is identical to the original hand-written pair loop. The
//! simulation is fully deterministic: same configuration, same report.

use crate::cost::CostModel;
use crate::des::topo::{ExportSchedule, ImportSchedule, TopologyConfig, TopologySim};
use crate::engine::{Topology, TopologyError};
use couplink_layout::Decomposition;
use couplink_metrics::MetricsSnapshot;
use couplink_proto::export_port::{ExportAction, PortError};
use couplink_proto::import_port::ImportError;
use couplink_proto::rep::RepError;
use couplink_proto::{ConnectionId, Trace};
use couplink_time::{MatchPolicy, TimestampError, Tolerance};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of a coupled-pair simulation.
#[derive(Debug, Clone)]
pub struct CoupledConfig {
    /// How the exported array is decomposed over the exporting program.
    pub exporter_decomp: Decomposition,
    /// How the same array is decomposed over the importing program.
    pub importer_decomp: Decomposition,
    /// Match policy of the connection.
    pub policy: MatchPolicy,
    /// Tolerance (the paper's "precision").
    pub tolerance: f64,
    /// Whether the buddy-help optimization is enabled.
    pub buddy_help: bool,
    /// Number of export iterations each exporter process performs.
    pub exports: usize,
    /// Timestamp of export `i` is `export_t0 + i * export_dt`.
    pub export_t0: f64,
    /// Export timestamp step.
    pub export_dt: f64,
    /// Number of import iterations each importer process performs.
    pub imports: usize,
    /// Timestamp of import `j` is `import_t0 + j * import_dt`.
    pub import_t0: f64,
    /// Import timestamp step.
    pub import_dt: f64,
    /// Per-rank compute seconds per exporter iteration (index = rank).
    pub exporter_compute: Vec<f64>,
    /// Compute seconds per importer iteration (same for all ranks).
    pub importer_compute: f64,
    /// One-time importer startup cost before its first iteration
    /// (framework/data-structure initialization — the paper's §5 notes its
    /// effect on early iterations). Determines how large a head start the
    /// exporter has before the request stream begins.
    pub importer_startup: f64,
    /// Operation costs.
    pub cost: CostModel,
    /// Per-process framework buffer capacity in objects (`None` =
    /// unbounded, the paper's setting). With a bound, an exporter process
    /// stalls when its buffer is full and resumes when control traffic
    /// frees space — the §6 finite-buffer-space scenario.
    pub buffer_capacity: Option<usize>,
}

/// What happened to one export call (Figure-4 series data point kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionKind {
    /// Copied into the framework buffer.
    Copy,
    /// Copied and immediately sent (the known match).
    CopySend,
    /// Memcpy skipped.
    Skip,
}

impl From<ExportAction> for ActionKind {
    fn from(a: ExportAction) -> Self {
        match a {
            ExportAction::Buffer => ActionKind::Copy,
            ExportAction::BufferAndSend { .. } => ActionKind::CopySend,
            ExportAction::Skip => ActionKind::Skip,
        }
    }
}

/// Results of a coupled-pair run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoupledReport {
    /// Per exporter rank: seconds charged to each export call (the Figure 4
    /// y-axis for the slowest rank).
    pub export_time_series: Vec<Vec<f64>>,
    /// Per exporter rank: what each export call did.
    pub action_series: Vec<Vec<ActionKind>>,
    /// Per exporter rank: final port statistics.
    pub stats: Vec<couplink_proto::ExportStats>,
    /// Per exporter rank: virtual seconds spent on unnecessary buffering
    /// (Equation 2, counts × per-object memcpy time).
    pub t_ub_seconds: Vec<f64>,
    /// Per importer rank: completed import iterations.
    pub importer_done: Vec<usize>,
    /// Virtual time at which the last event executed.
    pub duration: f64,
    /// First export iteration whose timestamp lies beyond the final
    /// request's acceptable region. Exports from here on are buffered no
    /// matter what (no request can ever resolve them), so they are excluded
    /// from skip-profile analysis.
    pub tail_start: usize,
    /// The export/import timestamp schedule of the run (used to convert
    /// request indices to export iterations).
    pub schedule: Schedule,
    /// Per exporter rank, per request: the rank's export-iteration count at
    /// the moment the forwarded request arrived (phase diagnostics — how far
    /// ahead of the slow process the request stream runs).
    pub request_arrival_iter: Vec<Vec<usize>>,
    /// Event traces collected for ranks enabled via
    /// [`CoupledSim::trace_rank`], as `(rank, trace)` pairs.
    pub traces: Vec<(usize, Trace)>,
    /// End-of-run engine instrumentation. The counter half is deterministic:
    /// two runs of the same configuration produce identical values.
    pub metrics: MetricsSnapshot,
}

/// The timestamp schedule a coupled run used.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Schedule {
    /// Timestamp of export `i` is `export_t0 + i * export_dt`.
    pub export_t0: f64,
    /// Export timestamp step.
    pub export_dt: f64,
    /// Timestamp of import `j` is `import_t0 + j * import_dt`.
    pub import_t0: f64,
    /// Import timestamp step.
    pub import_dt: f64,
    /// Connection tolerance.
    pub tolerance: f64,
    /// Total imports of the run.
    pub imports: usize,
}

impl CoupledReport {
    /// The paper's *optimal state* entry point for `rank`, in export
    /// iterations: from this iteration on, every acceptable region buffers
    /// only its match (`T_i = 0`, Figure 6). Exports *between* regions are
    /// still buffered-and-pruned even in the optimal state (the next
    /// request's region is unknowable; see Figure 5 lines 17–20) and do not
    /// count, exactly like the paper's Equation (1), which only sums objects
    /// located inside acceptable regions. `None` if the run never settles.
    pub fn optimal_entry(&self, rank: usize) -> Option<usize> {
        let req = self.optimal_entry_request(rank)?;
        // The first export iteration inside (or after) that request's
        // acceptable region.
        let sched = &self.schedule;
        let region_lo = sched.import_t0 + req as f64 * sched.import_dt - sched.tolerance;
        let iter = ((region_lo - sched.export_t0) / sched.export_dt).ceil();
        Some(iter.max(0.0) as usize)
    }

    /// The first request index from which no acceptable region suffers
    /// unnecessary buffering on `rank` (`T_i = 0` for all later requests).
    pub fn optimal_entry_request(&self, rank: usize) -> Option<usize> {
        let per_req = &self.stats[rank].unnecessary_by_request;
        // Requests beyond the recorded vector had zero unnecessary copies.
        let last_bad = per_req.iter().rposition(|&n| n > 0);
        match last_bad {
            None => Some(0),
            // The run must prove at least one later region stayed clean.
            Some(i) if i + 1 < self.schedule.imports => Some(i + 1),
            Some(_) => None,
        }
    }

    /// Mean export-call time for `rank` over the closed iteration window.
    pub fn mean_export_time(&self, rank: usize, from: usize, to: usize) -> f64 {
        let s = &self.export_time_series[rank];
        let to = to.min(s.len());
        if from >= to {
            return 0.0;
        }
        s[from..to].iter().sum::<f64>() / (to - from) as f64
    }
}

/// Error aborting a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// An exporter port rejected an event.
    Port(PortError),
    /// A rep rejected an event.
    Rep(RepError),
    /// An importer port rejected an event.
    Import(ImportError),
    /// A timestamp in the schedule was not finite.
    Timestamp(TimestampError),
    /// The configuration was inconsistent.
    Config(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Port(e) => write!(f, "export port: {e}"),
            SimError::Rep(e) => write!(f, "rep: {e}"),
            SimError::Import(e) => write!(f, "import port: {e}"),
            SimError::Timestamp(e) => write!(f, "timestamp: {e}"),
            SimError::Config(s) => write!(f, "bad configuration: {s}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<PortError> for SimError {
    fn from(e: PortError) -> Self {
        SimError::Port(e)
    }
}
impl From<RepError> for SimError {
    fn from(e: RepError) -> Self {
        SimError::Rep(e)
    }
}
impl From<ImportError> for SimError {
    fn from(e: ImportError) -> Self {
        SimError::Import(e)
    }
}
impl From<TimestampError> for SimError {
    fn from(e: TimestampError) -> Self {
        SimError::Timestamp(e)
    }
}

/// The coupled-pair simulator. Construct with [`CoupledSim::new`], run with
/// [`CoupledSim::run`].
pub struct CoupledSim {
    cfg: CoupledConfig,
    topo: Topology,
    trace_ranks: Vec<usize>,
}

impl CoupledSim {
    /// Builds the simulation, validating the configuration.
    pub fn new(cfg: CoupledConfig) -> Result<Self, SimError> {
        let ne = cfg.exporter_decomp.procs();
        if cfg.exporter_compute.len() != ne {
            return Err(SimError::Config(format!(
                "exporter_compute has {} entries for {} processes",
                cfg.exporter_compute.len(),
                ne
            )));
        }
        if cfg.export_dt <= 0.0 || cfg.import_dt <= 0.0 {
            return Err(SimError::Config("timestamp steps must be positive".into()));
        }
        let tol = Tolerance::new(cfg.tolerance)?;
        let topo = Topology::pair(cfg.exporter_decomp, cfg.importer_decomp, cfg.policy, tol)
            .map_err(|e| match e {
                TopologyError::Layout(msg) => SimError::Config(msg),
                other => SimError::Config(other.to_string()),
            })?;
        Ok(CoupledSim {
            cfg,
            topo,
            trace_ranks: Vec::new(),
        })
    }

    /// Enables Figure-5 style event tracing for one exporter rank. The
    /// recorded trace appears in [`CoupledReport::traces`].
    pub fn trace_rank(&mut self, rank: usize) -> &mut Self {
        self.trace_ranks.push(rank);
        self
    }

    /// Runs to completion and returns the report.
    pub fn run(self) -> Result<CoupledReport, SimError> {
        let cfg = &self.cfg;
        let mut sim = TopologySim::new(TopologyConfig {
            topology: self.topo.clone(),
            exports: vec![ExportSchedule {
                program: "exporter".into(),
                region: "r".into(),
                t0: cfg.export_t0,
                dt: cfg.export_dt,
                count: cfg.exports,
                compute: cfg.exporter_compute.clone(),
            }],
            imports: vec![ImportSchedule {
                program: "importer".into(),
                region: "r".into(),
                t0: cfg.import_t0,
                dt: cfg.import_dt,
                count: cfg.imports,
                compute: cfg.importer_compute,
                startup: cfg.importer_startup,
            }],
            buddy_help: cfg.buddy_help,
            cost: cfg.cost,
            buffer_capacity: cfg.buffer_capacity,
            hierarchical: false,
        })?;
        for &rank in &self.trace_ranks {
            sim.trace("exporter", rank, ConnectionId(0))?;
        }
        let rep = sim.run()?;

        // Timestamp upper bound of the final request's acceptable region.
        let last_x = cfg.import_t0 + (cfg.imports.max(1) - 1) as f64 * cfg.import_dt;
        let last_hi = match cfg.policy {
            MatchPolicy::RegL => last_x,
            MatchPolicy::RegU | MatchPolicy::Reg => last_x + cfg.tolerance,
        };
        let tail_start = if cfg.imports == 0 {
            0
        } else {
            let mut i = ((last_hi - cfg.export_t0) / cfg.export_dt).floor() as i64 + 1;
            i = i.clamp(0, cfg.exports as i64);
            i as usize
        };

        let series = &rep.export_series[0];
        let ne = cfg.exporter_decomp.procs();
        let stats = rep.stats.into_iter().next().expect("one connection");
        let t_ub_seconds = stats
            .iter()
            .enumerate()
            .map(|(rank, s)| {
                let bytes = cfg.exporter_decomp.owned(rank).cells() * std::mem::size_of::<f64>();
                s.unnecessary_total() as f64 * cfg.cost.memcpy_time(bytes)
            })
            .collect();
        Ok(CoupledReport {
            export_time_series: series.times.clone(),
            action_series: series
                .actions
                .iter()
                .map(|calls| calls.iter().map(|per_conn| per_conn[0].1).collect())
                .collect(),
            stats,
            t_ub_seconds,
            importer_done: rep
                .import_done
                .into_iter()
                .next()
                .expect("one import drive"),
            duration: rep.duration,
            tail_start,
            schedule: Schedule {
                export_t0: cfg.export_t0,
                export_dt: cfg.export_dt,
                import_t0: cfg.import_t0,
                import_dt: cfg.import_dt,
                tolerance: cfg.tolerance,
                imports: cfg.imports,
            },
            request_arrival_iter: (0..ne)
                .map(|rank| {
                    series.request_arrivals[rank]
                        .iter()
                        .map(|&(_, iter)| iter)
                        .collect()
                })
                .collect(),
            traces: rep
                .traces
                .into_iter()
                .map(|(_, rank, _, trace)| (rank, trace))
                .collect(),
            metrics: rep.metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use couplink_layout::Extent2;

    /// A small but complete coupled run with the paper's timestamp pattern:
    /// exports every 1.0 from 1.6, imports every 20.0 from 20.0, REGL 2.5.
    fn small_config(buddy_help: bool, importer_compute: f64) -> CoupledConfig {
        let e = Extent2::new(64, 64);
        CoupledConfig {
            exporter_decomp: Decomposition::block_2d(e, 2, 2).unwrap(),
            importer_decomp: Decomposition::row_block(e, 4).unwrap(),
            policy: MatchPolicy::RegL,
            tolerance: 2.5,
            buddy_help,
            exports: 101,
            export_t0: 1.6,
            export_dt: 1.0,
            imports: 5,
            import_t0: 20.0,
            import_dt: 20.0,
            exporter_compute: vec![1e-4, 1e-4, 1e-4, 5e-3], // rank 3 is p_s
            importer_compute,
            importer_startup: 0.0,
            cost: CostModel::default(),
            buffer_capacity: None,
        }
    }

    #[test]
    fn run_completes_all_transfers() {
        let report = CoupledSim::new(small_config(true, 1e-3))
            .unwrap()
            .run()
            .unwrap();
        // Every importer rank completed all 5 imports.
        assert_eq!(report.importer_done, vec![5; 4]);
        // Every exporter rank sent exactly 5 matched objects.
        for stats in &report.stats {
            assert_eq!(stats.sends, 5, "{stats:?}");
            assert_eq!(stats.exports, 101);
        }
    }

    #[test]
    fn deterministic_repeat() {
        let a = CoupledSim::new(small_config(true, 1e-3))
            .unwrap()
            .run()
            .unwrap();
        let b = CoupledSim::new(small_config(true, 1e-3))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(a.export_time_series, b.export_time_series);
        assert_eq!(a.action_series, b.action_series);
        assert_eq!(a.duration, b.duration);
    }

    #[test]
    fn buddy_help_skips_memcpys_on_slow_rank() {
        let with = CoupledSim::new(small_config(true, 1e-3))
            .unwrap()
            .run()
            .unwrap();
        let without = CoupledSim::new(small_config(false, 1e-3))
            .unwrap()
            .run()
            .unwrap();
        let slow = 3;
        assert!(
            with.stats[slow].skips > without.stats[slow].skips,
            "buddy-help must increase skips: {} vs {}",
            with.stats[slow].skips,
            without.stats[slow].skips
        );
        // The data transferred is identical either way: same sends.
        assert_eq!(with.stats[slow].sends, without.stats[slow].sends);
    }

    #[test]
    fn fast_importer_reaches_optimal_state() {
        // A fast importer queries ahead of the slow exporter: after warm-up
        // the slow rank should only skip or copy-send (optimal state).
        let report = CoupledSim::new(small_config(true, 1e-4))
            .unwrap()
            .run()
            .unwrap();
        let slow = 3;
        let entry = report.optimal_entry(slow);
        assert!(entry.is_some(), "never entered the optimal state");
        assert!(entry.unwrap() < 90, "optimal state too late: {:?}", entry);
    }

    #[test]
    fn slow_importer_buffers_everything() {
        // When the importer lags far behind, requests arrive long after the
        // exports they match: nearly every export must be buffered
        // (Figure 4(a) flat profile).
        let mut cfg = small_config(true, 1.0); // importer takes 1 s per iter
        cfg.imports = 2;
        let report = CoupledSim::new(cfg).unwrap().run().unwrap();
        let slow = 3;
        let copies = report.action_series[slow]
            .iter()
            .filter(|a| **a == ActionKind::Copy)
            .count();
        assert!(
            copies > 90,
            "expected nearly all 101 exports copied, got {copies}"
        );
    }

    #[test]
    fn bad_config_rejected() {
        let mut cfg = small_config(true, 1e-3);
        cfg.exporter_compute.pop();
        assert!(matches!(CoupledSim::new(cfg), Err(SimError::Config(_))));
        let mut cfg = small_config(true, 1e-3);
        cfg.export_dt = 0.0;
        assert!(matches!(CoupledSim::new(cfg), Err(SimError::Config(_))));
    }

    #[test]
    fn export_series_lengths_match_iterations() {
        let report = CoupledSim::new(small_config(true, 1e-3))
            .unwrap()
            .run()
            .unwrap();
        for rank in 0..4 {
            assert_eq!(report.export_time_series[rank].len(), 101);
            assert_eq!(report.action_series[rank].len(), 101);
        }
    }

    #[test]
    fn bounded_buffer_stalls_exporter_until_requests_free_space() {
        // Capacity 4 with a slow importer: the exporter fills its buffer
        // and stalls; each request prunes the buffer and lets it continue.
        let mut cfg = small_config(true, 5e-2);
        cfg.buffer_capacity = Some(4);
        let report = CoupledSim::new(cfg).unwrap().run().unwrap();
        // All transfers still complete, correctness is unaffected.
        assert_eq!(report.importer_done, vec![5; 4]);
        for stats in &report.stats {
            assert_eq!(stats.sends, 5);
            assert!(stats.buffer_full_stalls > 0, "{stats:?}");
            assert!(stats.buffered_hwm <= 4);
        }
        // The stalls cost real (virtual) time versus the unbounded run.
        let mut unbounded = small_config(true, 5e-2);
        unbounded.buffer_capacity = None;
        let free_run = CoupledSim::new(unbounded).unwrap().run().unwrap();
        assert!(report.duration > free_run.duration);
    }

    #[test]
    fn buddy_help_lowers_peak_buffer_occupancy() {
        // A fast importer with buddy-help keeps the slow rank's buffer
        // nearly empty; without buddy-help every candidate is buffered.
        let with = CoupledSim::new(small_config(true, 1e-4))
            .unwrap()
            .run()
            .unwrap();
        let without = CoupledSim::new(small_config(false, 1e-4))
            .unwrap()
            .run()
            .unwrap();
        let slow = 3;
        assert!(
            with.stats[slow].buffered_hwm <= without.stats[slow].buffered_hwm,
            "{} vs {}",
            with.stats[slow].buffered_hwm,
            without.stats[slow].buffered_hwm
        );
    }

    #[test]
    fn t_ub_counts_convert_to_seconds() {
        let report = CoupledSim::new(small_config(false, 1e-3))
            .unwrap()
            .run()
            .unwrap();
        for rank in 0..4 {
            let per_copy = CostModel::default().memcpy_time(64 * 64 / 4 * 8);
            let expect = report.stats[rank].unnecessary_total() as f64 * per_copy;
            assert!((report.t_ub_seconds[rank] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn trace_rank_records_the_slow_ranks_events() {
        let mut sim = CoupledSim::new(small_config(true, 1e-3)).unwrap();
        sim.trace_rank(3);
        let report = sim.run().unwrap();
        assert_eq!(report.traces.len(), 1);
        let (rank, trace) = &report.traces[0];
        assert_eq!(*rank, 3);
        let (copied, skipped) = trace.export_counts();
        assert_eq!(copied + skipped, 101, "one trace line per export call");
        assert_eq!(copied as u64, report.stats[3].memcpys);
        assert_eq!(skipped as u64, report.stats[3].skips);
    }
}
