//! Deterministic discrete-event simulation of one exporter→importer coupled
//! pair — the configuration behind every Figure-4 style experiment.
//!
//! The simulated world matches the paper's micro-benchmark: an exporting
//! program with `E` processes (one of which may be artificially slowed — the
//! paper's `p_s`), an importing program with `I` processes, one connection
//! with a match policy and tolerance, and strictly periodic export/import
//! timestamp schedules. Compute phases advance the virtual clock by
//! configurable per-rank amounts; framework buffering charges
//! `CostModel::memcpy_time` for the process's piece of the distributed
//! array; control and data messages incur latency/bandwidth costs.
//!
//! The simulation is fully deterministic: same configuration, same report.

use crate::cost::CostModel;
use crate::des::EventQueue;
use couplink_layout::{Decomposition, RedistPlan};
use couplink_proto::export_port::{ExportAction, ExportPort, PortError};
use couplink_proto::import_port::{ImportError, ImportPort, ImportState};
use couplink_proto::rep::{ExporterRep, ImporterRep, RepError};
use couplink_proto::{ProcResponse, Rank, RepAnswer, RequestId};
use couplink_time::{MatchPolicy, PeriodicSchedule, Timestamp, TimestampError, Tolerance};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of a coupled-pair simulation.
#[derive(Debug, Clone)]
pub struct CoupledConfig {
    /// How the exported array is decomposed over the exporting program.
    pub exporter_decomp: Decomposition,
    /// How the same array is decomposed over the importing program.
    pub importer_decomp: Decomposition,
    /// Match policy of the connection.
    pub policy: MatchPolicy,
    /// Tolerance (the paper's "precision").
    pub tolerance: f64,
    /// Whether the buddy-help optimization is enabled.
    pub buddy_help: bool,
    /// Number of export iterations each exporter process performs.
    pub exports: usize,
    /// Timestamp of export `i` is `export_t0 + i * export_dt`.
    pub export_t0: f64,
    /// Export timestamp step.
    pub export_dt: f64,
    /// Number of import iterations each importer process performs.
    pub imports: usize,
    /// Timestamp of import `j` is `import_t0 + j * import_dt`.
    pub import_t0: f64,
    /// Import timestamp step.
    pub import_dt: f64,
    /// Per-rank compute seconds per exporter iteration (index = rank).
    pub exporter_compute: Vec<f64>,
    /// Compute seconds per importer iteration (same for all ranks).
    pub importer_compute: f64,
    /// One-time importer startup cost before its first iteration
    /// (framework/data-structure initialization — the paper's §5 notes its
    /// effect on early iterations). Determines how large a head start the
    /// exporter has before the request stream begins.
    pub importer_startup: f64,
    /// Operation costs.
    pub cost: CostModel,
    /// Per-process framework buffer capacity in objects (`None` =
    /// unbounded, the paper's setting). With a bound, an exporter process
    /// stalls when its buffer is full and resumes when control traffic
    /// frees space — the §6 finite-buffer-space scenario.
    pub buffer_capacity: Option<usize>,
}

/// What happened to one export call (Figure-4 series data point kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionKind {
    /// Copied into the framework buffer.
    Copy,
    /// Copied and immediately sent (the known match).
    CopySend,
    /// Memcpy skipped.
    Skip,
}

impl From<ExportAction> for ActionKind {
    fn from(a: ExportAction) -> Self {
        match a {
            ExportAction::Buffer => ActionKind::Copy,
            ExportAction::BufferAndSend { .. } => ActionKind::CopySend,
            ExportAction::Skip => ActionKind::Skip,
        }
    }
}

/// Results of a coupled-pair run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoupledReport {
    /// Per exporter rank: seconds charged to each export call (the Figure 4
    /// y-axis for the slowest rank).
    pub export_time_series: Vec<Vec<f64>>,
    /// Per exporter rank: what each export call did.
    pub action_series: Vec<Vec<ActionKind>>,
    /// Per exporter rank: final port statistics.
    pub stats: Vec<couplink_proto::ExportStats>,
    /// Per exporter rank: virtual seconds spent on unnecessary buffering
    /// (Equation 2, counts × per-object memcpy time).
    pub t_ub_seconds: Vec<f64>,
    /// Per importer rank: completed import iterations.
    pub importer_done: Vec<usize>,
    /// Virtual time at which the last event executed.
    pub duration: f64,
    /// First export iteration whose timestamp lies beyond the final
    /// request's acceptable region. Exports from here on are buffered no
    /// matter what (no request can ever resolve them), so they are excluded
    /// from skip-profile analysis.
    pub tail_start: usize,
    /// The export/import timestamp schedule of the run (used to convert
    /// request indices to export iterations).
    pub schedule: Schedule,
    /// Per exporter rank, per request: the rank's export-iteration count at
    /// the moment the forwarded request arrived (phase diagnostics — how far
    /// ahead of the slow process the request stream runs).
    pub request_arrival_iter: Vec<Vec<usize>>,
}

/// The timestamp schedule a coupled run used.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Schedule {
    /// Timestamp of export `i` is `export_t0 + i * export_dt`.
    pub export_t0: f64,
    /// Export timestamp step.
    pub export_dt: f64,
    /// Timestamp of import `j` is `import_t0 + j * import_dt`.
    pub import_t0: f64,
    /// Import timestamp step.
    pub import_dt: f64,
    /// Connection tolerance.
    pub tolerance: f64,
    /// Total imports of the run.
    pub imports: usize,
}

impl CoupledReport {
    /// The paper's *optimal state* entry point for `rank`, in export
    /// iterations: from this iteration on, every acceptable region buffers
    /// only its match (`T_i = 0`, Figure 6). Exports *between* regions are
    /// still buffered-and-pruned even in the optimal state (the next
    /// request's region is unknowable; see Figure 5 lines 17–20) and do not
    /// count, exactly like the paper's Equation (1), which only sums objects
    /// located inside acceptable regions. `None` if the run never settles.
    pub fn optimal_entry(&self, rank: usize) -> Option<usize> {
        let req = self.optimal_entry_request(rank)?;
        // The first export iteration inside (or after) that request's
        // acceptable region.
        let sched = &self.schedule;
        let region_lo = sched.import_t0 + req as f64 * sched.import_dt - sched.tolerance;
        let iter = ((region_lo - sched.export_t0) / sched.export_dt).ceil();
        Some(iter.max(0.0) as usize)
    }

    /// The first request index from which no acceptable region suffers
    /// unnecessary buffering on `rank` (`T_i = 0` for all later requests).
    pub fn optimal_entry_request(&self, rank: usize) -> Option<usize> {
        let per_req = &self.stats[rank].unnecessary_by_request;
        // Requests beyond the recorded vector had zero unnecessary copies.
        let last_bad = per_req.iter().rposition(|&n| n > 0);
        match last_bad {
            None => Some(0),
            // The run must prove at least one later region stayed clean.
            Some(i) if i + 1 < self.schedule.imports => Some(i + 1),
            Some(_) => None,
        }
    }

    /// Mean export-call time for `rank` over the closed iteration window.
    pub fn mean_export_time(&self, rank: usize, from: usize, to: usize) -> f64 {
        let s = &self.export_time_series[rank];
        let to = to.min(s.len());
        if from >= to {
            return 0.0;
        }
        s[from..to].iter().sum::<f64>() / (to - from) as f64
    }
}

/// Error aborting a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// An exporter port rejected an event.
    Port(PortError),
    /// A rep rejected an event.
    Rep(RepError),
    /// An importer port rejected an event.
    Import(ImportError),
    /// A timestamp in the schedule was not finite.
    Timestamp(TimestampError),
    /// The configuration was inconsistent.
    Config(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Port(e) => write!(f, "export port: {e}"),
            SimError::Rep(e) => write!(f, "rep: {e}"),
            SimError::Import(e) => write!(f, "import port: {e}"),
            SimError::Timestamp(e) => write!(f, "timestamp: {e}"),
            SimError::Config(s) => write!(f, "bad configuration: {s}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<PortError> for SimError {
    fn from(e: PortError) -> Self {
        SimError::Port(e)
    }
}
impl From<RepError> for SimError {
    fn from(e: RepError) -> Self {
        SimError::Rep(e)
    }
}
impl From<ImportError> for SimError {
    fn from(e: ImportError) -> Self {
        SimError::Import(e)
    }
}
impl From<TimestampError> for SimError {
    fn from(e: TimestampError) -> Self {
        SimError::Timestamp(e)
    }
}

#[derive(Debug)]
enum Event {
    /// Exporter `rank` finishes its compute phase and performs its export.
    ExpExport { rank: usize },
    /// Importer `rank` makes its next collective import call.
    ImpCall { rank: usize },
    /// Message deliveries.
    ToExpRep(ExpRepMsg),
    ToImpRep(ImpRepMsg),
    ToExpProc { rank: usize, msg: ExpProcMsg },
    ToImpProc { rank: usize, msg: ImpProcMsg },
}

#[derive(Debug)]
enum ExpRepMsg {
    ImportRequest { req: RequestId, ts: Timestamp },
    Response { rank: Rank, req: RequestId, resp: ProcResponse },
}

#[derive(Debug)]
enum ImpRepMsg {
    ImportCall { rank: Rank, ts: Timestamp },
    Answer { req: RequestId, answer: RepAnswer },
}

#[derive(Debug)]
enum ExpProcMsg {
    ForwardRequest { req: RequestId, ts: Timestamp },
    BuddyHelp { req: RequestId, answer: RepAnswer },
}

#[derive(Debug)]
enum ImpProcMsg {
    Answer { req: RequestId, answer: RepAnswer },
    Piece { req: RequestId },
}

struct ExpProcState {
    port: ExportPort,
    iter: usize,
    times: Vec<f64>,
    actions: Vec<ActionKind>,
    request_arrivals: Vec<usize>,
    /// Blocked on a full buffer, waiting for control traffic to free space.
    blocked: bool,
}

struct ImpProcState {
    port: ImportPort,
    iter: usize,
    waiting: bool,
}

/// The coupled-pair simulator. Construct with [`CoupledSim::new`], run with
/// [`CoupledSim::run`].
pub struct CoupledSim {
    cfg: CoupledConfig,
    plan: RedistPlan,
    queue: EventQueue<Event>,
    exp_procs: Vec<ExpProcState>,
    imp_procs: Vec<ImpProcState>,
    exp_rep: ExporterRep,
    imp_rep: ImporterRep,
    /// Bytes of one exporter rank's piece (for memcpy cost), per rank.
    piece_bytes: Vec<usize>,
}

impl CoupledSim {
    /// Builds the simulation, validating the configuration.
    pub fn new(cfg: CoupledConfig) -> Result<Self, SimError> {
        let ne = cfg.exporter_decomp.procs();
        let ni = cfg.importer_decomp.procs();
        if cfg.exporter_compute.len() != ne {
            return Err(SimError::Config(format!(
                "exporter_compute has {} entries for {} processes",
                cfg.exporter_compute.len(),
                ne
            )));
        }
        if cfg.export_dt <= 0.0 || cfg.import_dt <= 0.0 {
            return Err(SimError::Config("timestamp steps must be positive".into()));
        }
        let plan = RedistPlan::build(cfg.exporter_decomp, cfg.importer_decomp)
            .map_err(|e| SimError::Config(e.to_string()))?;
        let tol = Tolerance::new(cfg.tolerance)?;
        let conn = couplink_proto::ConnectionId(0);
        let exp_procs = (0..ne)
            .map(|_| ExpProcState {
                port: match cfg.buffer_capacity {
                    Some(cap) => ExportPort::with_capacity(conn, cfg.policy, tol, cap),
                    None => ExportPort::new(conn, cfg.policy, tol),
                },
                iter: 0,
                times: Vec::with_capacity(cfg.exports),
                actions: Vec::with_capacity(cfg.exports),
                request_arrivals: Vec::new(),
                blocked: false,
            })
            .collect();
        let imp_procs = (0..ni)
            .map(|rank| ImpProcState {
                port: ImportPort::new(plan.recvs_to(rank).count()),
                iter: 0,
                waiting: false,
            })
            .collect();
        let piece_bytes = (0..ne)
            .map(|rank| cfg.exporter_decomp.owned(rank).cells() * std::mem::size_of::<f64>())
            .collect();
        let exp_rep = ExporterRep::new(ne, cfg.buddy_help);
        let imp_rep = ImporterRep::new(ni);
        Ok(CoupledSim {
            cfg,
            plan,
            queue: EventQueue::new(),
            exp_procs,
            imp_procs,
            exp_rep,
            imp_rep,
            piece_bytes,
        })
    }

    fn export_ts(&self, iter: usize) -> Result<Timestamp, SimError> {
        Ok(PeriodicSchedule::new(self.cfg.export_t0, self.cfg.export_dt)?.at(iter)?)
    }

    fn import_ts(&self, iter: usize) -> Result<Timestamp, SimError> {
        Ok(PeriodicSchedule::new(self.cfg.import_t0, self.cfg.import_dt)?.at(iter)?)
    }

    /// Schedules the data pieces rank `rank` must send for a matched
    /// transfer, charging network costs.
    fn send_pieces(&mut self, rank: usize, req: RequestId, extra_delay: f64) {
        let cost = self.cfg.cost;
        let sends: Vec<(usize, usize)> = self
            .plan
            .sends_from(rank)
            .map(|t| (t.dst, t.rect.cells() * std::mem::size_of::<f64>()))
            .collect();
        for (dst, bytes) in sends {
            self.queue.schedule(
                extra_delay + cost.data_time(bytes),
                Event::ToImpProc {
                    rank: dst,
                    msg: ImpProcMsg::Piece { req },
                },
            );
        }
    }

    /// Runs to completion and returns the report.
    pub fn run(mut self) -> Result<CoupledReport, SimError> {
        // Kick off every process: exporters compute before their first
        // export; importers compute before their first import call.
        for rank in 0..self.exp_procs.len() {
            self.queue
                .schedule(self.cfg.exporter_compute[rank], Event::ExpExport { rank });
        }
        for rank in 0..self.imp_procs.len() {
            self.queue.schedule(
                self.cfg.importer_startup + self.cfg.importer_compute,
                Event::ImpCall { rank },
            );
        }

        while let Some((_, event)) = self.queue.pop() {
            self.dispatch(event)?;
        }

        let duration = self.queue.now().0;
        // Timestamp upper bound of the final request's acceptable region.
        let last_x = self.cfg.import_t0 + (self.cfg.imports.max(1) - 1) as f64 * self.cfg.import_dt;
        let last_hi = match self.cfg.policy {
            MatchPolicy::RegL => last_x,
            MatchPolicy::RegU | MatchPolicy::Reg => last_x + self.cfg.tolerance,
        };
        let tail_start = if self.cfg.imports == 0 {
            0
        } else {
            let mut i = ((last_hi - self.cfg.export_t0) / self.cfg.export_dt).floor() as i64 + 1;
            i = i.clamp(0, self.cfg.exports as i64);
            i as usize
        };
        let mut report = CoupledReport {
            export_time_series: Vec::new(),
            action_series: Vec::new(),
            stats: Vec::new(),
            t_ub_seconds: Vec::new(),
            importer_done: self.imp_procs.iter().map(|p| p.iter).collect(),
            duration,
            tail_start,
            request_arrival_iter: self
                .exp_procs
                .iter()
                .map(|p| p.request_arrivals.clone())
                .collect(),
            schedule: Schedule {
                export_t0: self.cfg.export_t0,
                export_dt: self.cfg.export_dt,
                import_t0: self.cfg.import_t0,
                import_dt: self.cfg.import_dt,
                tolerance: self.cfg.tolerance,
                imports: self.cfg.imports,
            },
        };
        for (rank, p) in self.exp_procs.iter().enumerate() {
            report.export_time_series.push(p.times.clone());
            report.action_series.push(p.actions.clone());
            report.stats.push(p.port.stats().clone());
            let per_copy = self.cfg.cost.memcpy_time(self.piece_bytes[rank]);
            report
                .t_ub_seconds
                .push(p.port.stats().unnecessary_total() as f64 * per_copy);
        }
        Ok(report)
    }

    fn dispatch(&mut self, event: Event) -> Result<(), SimError> {
        let ctrl = self.cfg.cost.ctrl_time();
        match event {
            Event::ExpExport { rank } => {
                let iter = self.exp_procs[rank].iter;
                let ts = self.export_ts(iter)?;
                let fx = match self.exp_procs[rank].port.on_export(ts) {
                    Err(PortError::BufferFull { .. }) => {
                        // Stall: the export retries when a control message
                        // frees buffer space.
                        self.exp_procs[rank].blocked = true;
                        return Ok(());
                    }
                    other => other?,
                };
                let action = fx.action.expect("on_export always decides an action");
                let call_cost = if action.copies() {
                    self.cfg.cost.memcpy_time(self.piece_bytes[rank])
                        + self.cfg.cost.export_overhead
                } else {
                    self.cfg.cost.export_overhead
                };
                {
                    let p = &mut self.exp_procs[rank];
                    p.times.push(call_cost);
                    p.actions.push(action.into());
                    p.iter += 1;
                }
                if let ExportAction::BufferAndSend { request } = action {
                    self.send_pieces(rank, request, call_cost);
                }
                for r in &fx.resolutions {
                    self.queue.schedule(
                        call_cost + ctrl,
                        Event::ToExpRep(ExpRepMsg::Response {
                            rank: Rank(rank as u32),
                            req: r.request,
                            resp: match r.answer {
                                RepAnswer::Match(m) => ProcResponse::Match(m),
                                RepAnswer::NoMatch => ProcResponse::NoMatch,
                            },
                        }),
                    );
                }
                let sends: Vec<RequestId> = fx
                    .resolutions
                    .iter()
                    .filter(|r| r.send.is_some())
                    .map(|r| r.request)
                    .collect();
                for req in sends {
                    self.send_pieces(rank, req, call_cost);
                }
                let iter = self.exp_procs[rank].iter;
                if iter < self.cfg.exports {
                    self.queue.schedule(
                        call_cost + self.cfg.exporter_compute[rank],
                        Event::ExpExport { rank },
                    );
                }
            }

            Event::ImpCall { rank } => {
                let iter = self.imp_procs[rank].iter;
                if iter >= self.cfg.imports {
                    return Ok(());
                }
                let ts = self.import_ts(iter)?;
                self.imp_procs[rank].port.begin_import(ts)?;
                self.imp_procs[rank].waiting = true;
                self.queue.schedule(
                    ctrl,
                    Event::ToImpRep(ImpRepMsg::ImportCall {
                        rank: Rank(rank as u32),
                        ts,
                    }),
                );
                self.check_import_done(rank)?;
            }

            Event::ToImpRep(msg) => match msg {
                ImpRepMsg::ImportCall { rank, ts } => {
                    let fx = self.imp_rep.on_import_call(rank, ts)?;
                    if let Some((req, ts)) = fx.request {
                        self.queue.schedule(
                            ctrl,
                            Event::ToExpRep(ExpRepMsg::ImportRequest { req, ts }),
                        );
                    }
                    for (rank, req, answer) in fx.deliver {
                        self.queue.schedule(
                            ctrl,
                            Event::ToImpProc {
                                rank: rank.0 as usize,
                                msg: ImpProcMsg::Answer { req, answer },
                            },
                        );
                    }
                }
                ImpRepMsg::Answer { req, answer } => {
                    let fx = self.imp_rep.on_answer(req, answer)?;
                    for (rank, req, answer) in fx.deliver {
                        self.queue.schedule(
                            ctrl,
                            Event::ToImpProc {
                                rank: rank.0 as usize,
                                msg: ImpProcMsg::Answer { req, answer },
                            },
                        );
                    }
                }
            },

            Event::ToExpRep(msg) => {
                let fx = match msg {
                    ExpRepMsg::ImportRequest { req, ts } => {
                        self.exp_rep.on_import_request(req, ts)?
                    }
                    ExpRepMsg::Response { rank, req, resp } => {
                        self.exp_rep.on_response(rank, req, resp)?
                    }
                };
                if let Some((req, ts)) = fx.forward {
                    for rank in 0..self.exp_procs.len() {
                        self.queue.schedule(
                            ctrl,
                            Event::ToExpProc {
                                rank,
                                msg: ExpProcMsg::ForwardRequest { req, ts },
                            },
                        );
                    }
                }
                if let Some((req, answer)) = fx.answer {
                    self.queue
                        .schedule(ctrl, Event::ToImpRep(ImpRepMsg::Answer { req, answer }));
                }
                for (rank, req, answer) in fx.buddy_help {
                    self.queue.schedule(
                        ctrl,
                        Event::ToExpProc {
                            rank: rank.0 as usize,
                            msg: ExpProcMsg::BuddyHelp { req, answer },
                        },
                    );
                }
            }

            Event::ToExpProc { rank, msg } => {
                match msg {
                ExpProcMsg::ForwardRequest { req, ts } => {
                    let iter_now = self.exp_procs[rank].iter;
                    self.exp_procs[rank].request_arrivals.push(iter_now);
                    let fx = self.exp_procs[rank].port.on_request(req, ts)?;
                    self.queue.schedule(
                        ctrl,
                        Event::ToExpRep(ExpRepMsg::Response {
                            rank: Rank(rank as u32),
                            req,
                            resp: fx.response,
                        }),
                    );
                    if fx.send.is_some() {
                        self.send_pieces(rank, req, 0.0);
                    }
                }
                ExpProcMsg::BuddyHelp { req, answer } => {
                    let fx = self.exp_procs[rank].port.on_buddy_help(req, answer)?;
                    if fx.send.is_some() {
                        self.send_pieces(rank, req, 0.0);
                    }
                }
                }
                // Control traffic may have freed buffer space: wake a
                // stalled exporter.
                if self.exp_procs[rank].blocked {
                    self.exp_procs[rank].blocked = false;
                    self.queue.schedule(0.0, Event::ExpExport { rank });
                }
            }

            Event::ToImpProc { rank, msg } => {
                match msg {
                    ImpProcMsg::Answer { req, answer } => {
                        self.imp_procs[rank].port.on_answer(req, answer)?;
                    }
                    ImpProcMsg::Piece { req } => {
                        self.imp_procs[rank].port.on_piece(req)?;
                    }
                }
                self.check_import_done(rank)?;
            }
        }
        Ok(())
    }

    /// If importer `rank` is waiting and its current import has finished,
    /// advance it to the next iteration.
    fn check_import_done(&mut self, rank: usize) -> Result<(), SimError> {
        let p = &mut self.imp_procs[rank];
        if p.waiting && matches!(p.port.state(), ImportState::Done { .. }) {
            p.port.finish();
            p.waiting = false;
            p.iter += 1;
            if p.iter < self.cfg.imports {
                self.queue
                    .schedule(self.cfg.importer_compute, Event::ImpCall { rank });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use couplink_layout::Extent2;

    /// A small but complete coupled run with the paper's timestamp pattern:
    /// exports every 1.0 from 1.6, imports every 20.0 from 20.0, REGL 2.5.
    fn small_config(buddy_help: bool, importer_compute: f64) -> CoupledConfig {
        let e = Extent2::new(64, 64);
        CoupledConfig {
            exporter_decomp: Decomposition::block_2d(e, 2, 2).unwrap(),
            importer_decomp: Decomposition::row_block(e, 4).unwrap(),
            policy: MatchPolicy::RegL,
            tolerance: 2.5,
            buddy_help,
            exports: 101,
            export_t0: 1.6,
            export_dt: 1.0,
            imports: 5,
            import_t0: 20.0,
            import_dt: 20.0,
            exporter_compute: vec![1e-4, 1e-4, 1e-4, 5e-3], // rank 3 is p_s
            importer_compute,
            importer_startup: 0.0,
            cost: CostModel::default(),
            buffer_capacity: None,
        }
    }

    #[test]
    fn run_completes_all_transfers() {
        let report = CoupledSim::new(small_config(true, 1e-3)).unwrap().run().unwrap();
        // Every importer rank completed all 5 imports.
        assert_eq!(report.importer_done, vec![5; 4]);
        // Every exporter rank sent exactly 5 matched objects.
        for stats in &report.stats {
            assert_eq!(stats.sends, 5, "{stats:?}");
            assert_eq!(stats.exports, 101);
        }
    }

    #[test]
    fn deterministic_repeat() {
        let a = CoupledSim::new(small_config(true, 1e-3)).unwrap().run().unwrap();
        let b = CoupledSim::new(small_config(true, 1e-3)).unwrap().run().unwrap();
        assert_eq!(a.export_time_series, b.export_time_series);
        assert_eq!(a.action_series, b.action_series);
        assert_eq!(a.duration, b.duration);
    }

    #[test]
    fn buddy_help_skips_memcpys_on_slow_rank() {
        let with = CoupledSim::new(small_config(true, 1e-3)).unwrap().run().unwrap();
        let without = CoupledSim::new(small_config(false, 1e-3)).unwrap().run().unwrap();
        let slow = 3;
        assert!(
            with.stats[slow].skips > without.stats[slow].skips,
            "buddy-help must increase skips: {} vs {}",
            with.stats[slow].skips,
            without.stats[slow].skips
        );
        // The data transferred is identical either way: same sends.
        assert_eq!(with.stats[slow].sends, without.stats[slow].sends);
    }

    #[test]
    fn fast_importer_reaches_optimal_state() {
        // A fast importer queries ahead of the slow exporter: after warm-up
        // the slow rank should only skip or copy-send (optimal state).
        let report = CoupledSim::new(small_config(true, 1e-4)).unwrap().run().unwrap();
        let slow = 3;
        let entry = report.optimal_entry(slow);
        assert!(entry.is_some(), "never entered the optimal state");
        assert!(
            entry.unwrap() < 90,
            "optimal state too late: {:?}",
            entry
        );
    }

    #[test]
    fn slow_importer_buffers_everything() {
        // When the importer lags far behind, requests arrive long after the
        // exports they match: nearly every export must be buffered
        // (Figure 4(a) flat profile).
        let mut cfg = small_config(true, 1.0); // importer takes 1 s per iter
        cfg.imports = 2;
        let report = CoupledSim::new(cfg).unwrap().run().unwrap();
        let slow = 3;
        let copies = report.action_series[slow]
            .iter()
            .filter(|a| **a == ActionKind::Copy)
            .count();
        assert!(
            copies > 90,
            "expected nearly all 101 exports copied, got {copies}"
        );
    }

    #[test]
    fn bad_config_rejected() {
        let mut cfg = small_config(true, 1e-3);
        cfg.exporter_compute.pop();
        assert!(matches!(CoupledSim::new(cfg), Err(SimError::Config(_))));
        let mut cfg = small_config(true, 1e-3);
        cfg.export_dt = 0.0;
        assert!(matches!(CoupledSim::new(cfg), Err(SimError::Config(_))));
    }

    #[test]
    fn export_series_lengths_match_iterations() {
        let report = CoupledSim::new(small_config(true, 1e-3)).unwrap().run().unwrap();
        for rank in 0..4 {
            assert_eq!(report.export_time_series[rank].len(), 101);
            assert_eq!(report.action_series[rank].len(), 101);
        }
    }

    #[test]
    fn bounded_buffer_stalls_exporter_until_requests_free_space() {
        // Capacity 4 with a slow importer: the exporter fills its buffer
        // and stalls; each request prunes the buffer and lets it continue.
        let mut cfg = small_config(true, 5e-2);
        cfg.buffer_capacity = Some(4);
        let report = CoupledSim::new(cfg).unwrap().run().unwrap();
        // All transfers still complete, correctness is unaffected.
        assert_eq!(report.importer_done, vec![5; 4]);
        for stats in &report.stats {
            assert_eq!(stats.sends, 5);
            assert!(stats.buffer_full_stalls > 0, "{stats:?}");
            assert!(stats.buffered_hwm <= 4);
        }
        // The stalls cost real (virtual) time versus the unbounded run.
        let mut unbounded = small_config(true, 5e-2);
        unbounded.buffer_capacity = None;
        let free_run = CoupledSim::new(unbounded).unwrap().run().unwrap();
        assert!(report.duration > free_run.duration);
    }

    #[test]
    fn buddy_help_lowers_peak_buffer_occupancy() {
        // A fast importer with buddy-help keeps the slow rank's buffer
        // nearly empty; without buddy-help every candidate is buffered.
        let with = CoupledSim::new(small_config(true, 1e-4)).unwrap().run().unwrap();
        let without = CoupledSim::new(small_config(false, 1e-4)).unwrap().run().unwrap();
        let slow = 3;
        assert!(
            with.stats[slow].buffered_hwm <= without.stats[slow].buffered_hwm,
            "{} vs {}",
            with.stats[slow].buffered_hwm,
            without.stats[slow].buffered_hwm
        );
    }

    #[test]
    fn t_ub_counts_convert_to_seconds() {
        let report = CoupledSim::new(small_config(false, 1e-3)).unwrap().run().unwrap();
        for rank in 0..4 {
            let per_copy = CostModel::default().memcpy_time(64 * 64 / 4 * 8);
            let expect = report.stats[rank].unnecessary_total() as f64 * per_copy;
            assert!((report.t_ub_seconds[rank] - expect).abs() < 1e-12);
        }
    }
}
