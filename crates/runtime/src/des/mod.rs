//! A minimal deterministic discrete-event core.

pub mod coupled;
pub mod topo;

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Virtual time in seconds (finite, totally ordered).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(pub f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Advances by `dt` seconds.
    pub fn after(self, dt: f64) -> SimTime {
        debug_assert!(dt.is_finite() && dt >= 0.0, "non-negative finite delay");
        SimTime(self.0 + dt)
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("sim times are finite")
    }
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; ties broken by insertion order so the
        // simulation is fully deterministic.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic event queue: events at equal times pop in insertion order.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current virtual time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` `delay` seconds from now.
    pub fn schedule(&mut self, delay: f64, event: E) {
        self.schedule_at(self.now.after(delay), event);
    }

    /// Schedules `event` at the absolute time `at` (must not be in the past).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The event queue *is* the simulator's clock: reading it yields the time
/// of the last popped event, in virtual seconds.
impl<E> crate::engine::Clock for EventQueue<E> {
    fn now(&self) -> f64 {
        EventQueue::now(self).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(1.0, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        assert_eq!(q.now(), SimTime::ZERO);
        let (at, _) = q.pop().unwrap();
        assert_eq!(at, SimTime(5.0));
        assert_eq!(q.now(), SimTime(5.0));
        // Relative scheduling is from the new now.
        q.schedule(1.0, ());
        let (at, _) = q.pop().unwrap();
        assert_eq!(at, SimTime(6.0));
    }

    #[test]
    fn sim_time_ordering() {
        assert!(SimTime(1.0) < SimTime(2.0));
        assert_eq!(SimTime(1.5).after(0.5), SimTime(2.0));
    }
}
