//! Deterministic discrete-event simulation of an arbitrary coupling
//! topology.
//!
//! This is the simulator side of the shared engine: any number of programs,
//! each with its own process count, rep, export/import schedules and
//! per-rank compute costs; any set of connections, including one exported
//! region feeding several importers. The protocol itself lives in
//! [`crate::engine`] — this module only turns [`Outgoing`] messages into
//! events with modelled latencies and advances virtual time.
//!
//! The single-pair simulator ([`crate::des::coupled::CoupledSim`]) is a thin
//! adapter over this driver; for pair topologies the event schedule (times
//! *and* tie-breaking insertion order) is identical to the original
//! hand-written pair loop, so Figure-4 outputs are bit-for-bit stable.

use crate::cost::CostModel;
use crate::des::coupled::{ActionKind, SimError};
use crate::des::{EventQueue, SimTime};
use crate::engine::{
    ctrl_class, deliver_all, ChaosConfig, ChaosState, Endpoint, EngineError, ExportNode,
    ImportNode, Outgoing, RepNode, Topology, Transport,
};
use couplink_metrics::{EngineMetrics, MetricsSnapshot, Phase};
use couplink_proto::{
    ConnectionId, CtrlMsg, ExportStats, ImportState, PortError, RequestId, Trace,
};
use couplink_time::{PeriodicSchedule, Timestamp};
use std::collections::HashMap;
use std::sync::Arc;

impl From<EngineError> for SimError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::Port(e) => SimError::Port(e),
            EngineError::Rep(e) => SimError::Rep(e),
            EngineError::Import(e) => SimError::Import(e),
            EngineError::UnexpectedMessage(what) => SimError::Config(what.into()),
        }
    }
}

/// Periodic export schedule for one program's exported region.
#[derive(Debug, Clone)]
pub struct ExportSchedule {
    /// Program name.
    pub program: String,
    /// Exported region name.
    pub region: String,
    /// Timestamp of export `i` is `t0 + i * dt`.
    pub t0: f64,
    /// Timestamp step.
    pub dt: f64,
    /// Number of export iterations each process performs.
    pub count: usize,
    /// Per-rank compute seconds per iteration (index = rank).
    pub compute: Vec<f64>,
}

/// Periodic import schedule for one program's imported region.
#[derive(Debug, Clone)]
pub struct ImportSchedule {
    /// Program name.
    pub program: String,
    /// Imported region name.
    pub region: String,
    /// Timestamp of import `j` is `t0 + j * dt`.
    pub t0: f64,
    /// Timestamp step.
    pub dt: f64,
    /// Number of import iterations each process performs.
    pub count: usize,
    /// Compute seconds per iteration (same for all ranks).
    pub compute: f64,
    /// One-time startup cost before the first iteration.
    pub startup: f64,
}

/// Configuration of a topology simulation.
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// The coupling topology.
    pub topology: Topology,
    /// One schedule per exported region (all must be covered).
    pub exports: Vec<ExportSchedule>,
    /// One schedule per imported region (all must be covered).
    pub imports: Vec<ImportSchedule>,
    /// Whether the buddy-help optimization is enabled.
    pub buddy_help: bool,
    /// Operation costs.
    pub cost: CostModel,
    /// Per-process framework buffer capacity in objects (`None` =
    /// unbounded).
    pub buffer_capacity: Option<usize>,
}

/// Per-rank series of one export schedule, in the report.
#[derive(Debug, Clone)]
pub struct ExportSeries {
    /// Program name.
    pub program: String,
    /// Region name.
    pub region: String,
    /// Per rank: seconds charged to each export call.
    pub times: Vec<Vec<f64>>,
    /// Per rank, per call: what each connection did with the export.
    pub actions: Vec<Vec<Vec<(ConnectionId, ActionKind)>>>,
    /// Per rank: `(connection, export-iteration count at arrival)` for each
    /// forwarded request, in arrival order.
    pub request_arrivals: Vec<Vec<(ConnectionId, usize)>>,
}

/// Results of a topology run.
#[derive(Debug, Clone)]
pub struct TopoReport {
    /// Virtual time at which the last event executed.
    pub duration: f64,
    /// Per connection, per exporter rank: final port statistics.
    pub stats: Vec<Vec<ExportStats>>,
    /// Per connection: the collective answer of each request, in resolution
    /// order (`Some(m)` for a match at `m`, `None` for NO MATCH).
    pub matches: Vec<Vec<Option<Timestamp>>>,
    /// One series per export schedule, in configuration order.
    pub export_series: Vec<ExportSeries>,
    /// Per import schedule, per rank: completed import iterations.
    pub import_done: Vec<Vec<usize>>,
    /// Collected event traces: `(program, rank, connection, trace)`.
    pub traces: Vec<(String, usize, ConnectionId, Trace)>,
    /// End-of-run engine instrumentation. The counter half is deterministic:
    /// two runs of the same configuration produce identical values.
    pub metrics: MetricsSnapshot,
}

#[derive(Debug)]
enum Ev {
    /// Process `rank` of export drive `drive` performs its next export.
    Export { drive: usize, rank: usize },
    /// Process `rank` of import drive `drive` makes its next import call.
    ImpCall { drive: usize, rank: usize },
    /// A control message arrives at an endpoint.
    Deliver { to: Endpoint, msg: CtrlMsg },
    /// A piece of matched data arrives at an importing process.
    Piece {
        prog: usize,
        rank: usize,
        conn: ConnectionId,
        req: RequestId,
    },
}

struct ExpRec {
    iter: usize,
    times: Vec<f64>,
    actions: Vec<Vec<(ConnectionId, ActionKind)>>,
    request_arrivals: Vec<(ConnectionId, usize)>,
    /// Blocked on a full buffer, waiting for control traffic to free space.
    blocked: bool,
}

struct ExpDrive {
    prog: usize,
    region: usize,
    t0: f64,
    dt: f64,
    count: usize,
    compute: Vec<f64>,
    piece_bytes: Vec<usize>,
    recs: Vec<ExpRec>,
}

struct ImpDrive {
    prog: usize,
    conn: ConnectionId,
    t0: f64,
    dt: f64,
    count: usize,
    compute: f64,
    startup: f64,
    iters: Vec<usize>,
    waiting: Vec<bool>,
    /// Virtual time each rank's in-flight import call started.
    wait_start: Vec<f64>,
}

/// Schedules engine messages as simulator events with modelled latencies.
struct DesTransport<'a> {
    queue: &'a mut EventQueue<Ev>,
    topo: &'a Topology,
    cost: &'a CostModel,
    /// Extra delay before network costs (the emitting call's own cost).
    delay: f64,
    /// Seeded fault injection for control messages, if enabled.
    chaos: Option<&'a mut ChaosState>,
    /// Run-wide instrumentation.
    metrics: &'a EngineMetrics,
}

impl Transport for DesTransport<'_> {
    type Error = SimError;

    fn ctrl(&mut self, to: Endpoint, msg: CtrlMsg) -> Result<(), SimError> {
        self.metrics.ctrl(ctrl_class(&msg)).inc();
        self.metrics
            .phases
            .add_virtual(Phase::Ctrl, self.cost.ctrl_time());
        let nominal = self.delay + self.cost.ctrl_time();
        match self.chaos.as_deref_mut() {
            None => {
                self.queue.schedule(nominal, Ev::Deliver { to, msg });
            }
            Some(chaos) => {
                // Chaos plans absolute delivery times (possibly several, for
                // duplicated commutative messages) on top of the nominal
                // arrival, with FIFO-class streams clamped to their
                // watermark so per-stream order is preserved.
                let base_at = self.queue.now().0 + nominal;
                for at in chaos.deliveries(base_at, to, &msg) {
                    self.queue.schedule_at(SimTime(at), Ev::Deliver { to, msg });
                }
            }
        }
        Ok(())
    }

    fn transfer(
        &mut self,
        from: Endpoint,
        conn: ConnectionId,
        req: RequestId,
        _m: Timestamp,
    ) -> Result<(), SimError> {
        let Endpoint::Proc { rank, .. } = from else {
            return Err(SimError::Config("data transfer emitted by a rep".into()));
        };
        self.metrics.transfers.inc();
        let ct = self.topo.conn(conn);
        for t in ct.plan.sends_from(rank) {
            let bytes = t.rect.cells() * std::mem::size_of::<f64>();
            self.metrics.bytes_transferred.add(bytes as u64);
            self.metrics
                .phases
                .add_virtual(Phase::Transfer, self.cost.data_time(bytes));
            self.queue.schedule(
                self.delay + self.cost.data_time(bytes),
                Ev::Piece {
                    prog: ct.importer_prog,
                    rank: t.dst,
                    conn,
                    req,
                },
            );
        }
        Ok(())
    }
}

/// The topology simulator. Construct with [`TopologySim::new`], optionally
/// enable traces with [`TopologySim::trace`], run with [`TopologySim::run`].
pub struct TopologySim {
    topo: Topology,
    cost: CostModel,
    queue: EventQueue<Ev>,
    exp_drives: Vec<ExpDrive>,
    imp_drives: Vec<ImpDrive>,
    /// Export drive serving each connection (on its exporter program).
    exp_drive_of: HashMap<ConnectionId, usize>,
    /// Import drive serving each connection.
    imp_drive_of: HashMap<ConnectionId, usize>,
    exp_nodes: Vec<Vec<ExportNode>>,
    imp_nodes: Vec<Vec<ImportNode>>,
    reps: Vec<Option<RepNode>>,
    matches: Vec<Vec<Option<Timestamp>>>,
    traced: Vec<(usize, usize, ConnectionId)>,
    chaos: Option<ChaosState>,
    metrics: Arc<EngineMetrics>,
}

impl TopologySim {
    /// Builds the simulation, validating schedules against the topology.
    pub fn new(cfg: TopologyConfig) -> Result<Self, SimError> {
        let topo = cfg.topology;
        let mut exp_drives = Vec::new();
        let mut imp_drives = Vec::new();
        let mut exp_drive_of = HashMap::new();
        let mut imp_drive_of = HashMap::new();

        for s in &cfg.exports {
            let prog = topo
                .program_idx(&s.program)
                .ok_or_else(|| SimError::Config(format!("unknown program {}", s.program)))?;
            let region = topo.programs[prog].export_idx(&s.region).ok_or_else(|| {
                SimError::Config(format!("{} exports no region {}", s.program, s.region))
            })?;
            let procs = topo.programs[prog].procs;
            if s.compute.len() != procs {
                return Err(SimError::Config(format!(
                    "export schedule for {}.{} has {} compute entries for {} processes",
                    s.program,
                    s.region,
                    s.compute.len(),
                    procs
                )));
            }
            if s.dt <= 0.0 {
                return Err(SimError::Config("timestamp steps must be positive".into()));
            }
            let decomp = &topo.programs[prog].exports[region].decomp;
            let piece_bytes = (0..procs)
                .map(|rank| decomp.owned(rank).cells() * std::mem::size_of::<f64>())
                .collect();
            for &cid in &topo.programs[prog].exports[region].conns {
                exp_drive_of.insert(cid, exp_drives.len());
            }
            exp_drives.push(ExpDrive {
                prog,
                region,
                t0: s.t0,
                dt: s.dt,
                count: s.count,
                compute: s.compute.clone(),
                piece_bytes,
                recs: (0..procs)
                    .map(|_| ExpRec {
                        iter: 0,
                        times: Vec::with_capacity(s.count),
                        actions: Vec::with_capacity(s.count),
                        request_arrivals: Vec::new(),
                        blocked: false,
                    })
                    .collect(),
            });
        }
        for s in &cfg.imports {
            let prog = topo
                .program_idx(&s.program)
                .ok_or_else(|| SimError::Config(format!("unknown program {}", s.program)))?;
            let region = topo.programs[prog].import_idx(&s.region).ok_or_else(|| {
                SimError::Config(format!("{} imports no region {}", s.program, s.region))
            })?;
            if s.dt <= 0.0 {
                return Err(SimError::Config("timestamp steps must be positive".into()));
            }
            let conn = topo.programs[prog].imports[region].conn;
            let procs = topo.programs[prog].procs;
            imp_drive_of.insert(conn, imp_drives.len());
            imp_drives.push(ImpDrive {
                prog,
                conn,
                t0: s.t0,
                dt: s.dt,
                count: s.count,
                compute: s.compute,
                startup: s.startup,
                iters: vec![0; procs],
                waiting: vec![false; procs],
                wait_start: vec![0.0; procs],
            });
        }
        // Every region of the topology needs a schedule, or its processes
        // would never run.
        for (pi, p) in topo.programs.iter().enumerate() {
            for (ri, r) in p.exports.iter().enumerate() {
                if !exp_drives.iter().any(|d| d.prog == pi && d.region == ri) {
                    return Err(SimError::Config(format!(
                        "no export schedule for {}.{}",
                        p.name, r.name
                    )));
                }
            }
            for r in &p.imports {
                if !imp_drive_of.contains_key(&r.conn) {
                    return Err(SimError::Config(format!(
                        "no import schedule for {}.{}",
                        p.name, r.name
                    )));
                }
            }
        }

        let metrics = Arc::new(EngineMetrics::new());
        let exp_nodes = topo
            .programs
            .iter()
            .enumerate()
            .map(|(pi, p)| {
                if p.exports.is_empty() {
                    Vec::new()
                } else {
                    (0..p.procs)
                        .map(|rank| {
                            let mut node = ExportNode::new(&topo, pi, rank, cfg.buffer_capacity);
                            node.set_metrics(Arc::clone(&metrics));
                            node
                        })
                        .collect()
                }
            })
            .collect();
        let imp_nodes = topo
            .programs
            .iter()
            .enumerate()
            .map(|(pi, p)| {
                if p.imports.is_empty() {
                    Vec::new()
                } else {
                    (0..p.procs)
                        .map(|rank| {
                            let mut node = ImportNode::new(&topo, pi, rank);
                            node.set_metrics(Arc::clone(&metrics));
                            node
                        })
                        .collect()
                }
            })
            .collect();
        let reps = topo
            .programs
            .iter()
            .enumerate()
            .map(|(pi, p)| {
                if p.exports.is_empty() && p.imports.is_empty() {
                    None
                } else {
                    Some(RepNode::new(&topo, pi, cfg.buddy_help))
                }
            })
            .collect();
        let matches = vec![Vec::new(); topo.conns.len()];
        Ok(TopologySim {
            topo,
            cost: cfg.cost,
            queue: EventQueue::new(),
            exp_drives,
            imp_drives,
            exp_drive_of,
            imp_drive_of,
            exp_nodes,
            imp_nodes,
            reps,
            matches,
            traced: Vec::new(),
            chaos: None,
            metrics,
        })
    }

    /// The run-wide instrumentation shared by every node and the transport.
    pub fn metrics(&self) -> Arc<EngineMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Enables seeded fault injection (delay, duplication, drop-with-retry)
    /// on control-message delivery. The run stays fully deterministic: the
    /// same configuration and seed replay the same event schedule.
    pub fn chaos(&mut self, cfg: ChaosConfig) {
        self.chaos = Some(ChaosState::new(cfg));
    }

    /// Arms the deliberate pruning-rule bug on every export port, for
    /// mutation-testing the oracles (see
    /// [`couplink_proto::ExportPort::set_unsound_help_skip`]).
    pub fn arm_unsound_help_skip(&mut self) {
        for nodes in &mut self.exp_nodes {
            for node in nodes {
                node.arm_unsound_help_skip();
            }
        }
    }

    /// Enables Figure-5 style event tracing for one connection on one
    /// exporting process.
    pub fn trace(
        &mut self,
        program: &str,
        rank: usize,
        conn: ConnectionId,
    ) -> Result<(), SimError> {
        let prog = self
            .topo
            .program_idx(program)
            .ok_or_else(|| SimError::Config(format!("unknown program {program}")))?;
        self.exp_nodes[prog][rank].enable_trace(conn);
        self.traced.push((prog, rank, conn));
        Ok(())
    }

    /// Runs to completion and returns the report.
    pub fn run(mut self) -> Result<TopoReport, SimError> {
        // Kick off every process: exporters compute before their first
        // export; importers pay startup + compute before their first call.
        // All export drives start before all import drives, matching the
        // pair simulator's kickoff order.
        for (d, drive) in self.exp_drives.iter().enumerate() {
            for rank in 0..drive.recs.len() {
                self.queue
                    .schedule(drive.compute[rank], Ev::Export { drive: d, rank });
            }
        }
        for (d, drive) in self.imp_drives.iter().enumerate() {
            for rank in 0..drive.iters.len() {
                self.queue.schedule(
                    drive.startup + drive.compute,
                    Ev::ImpCall { drive: d, rank },
                );
            }
        }

        self.metrics.queue_depth.set(self.queue.len() as u64);
        while let Some((_, event)) = self.queue.pop() {
            self.dispatch(event)?;
            self.metrics.queue_depth.set(self.queue.len() as u64);
        }

        let duration = self.queue.now().0;
        let stats = self
            .topo
            .conns
            .iter()
            .map(|ct| {
                (0..self.topo.programs[ct.exporter_prog].procs)
                    .map(|rank| {
                        self.exp_nodes[ct.exporter_prog][rank]
                            .port_stats(ct.id)
                            .clone()
                    })
                    .collect()
            })
            .collect();
        let export_series = self
            .exp_drives
            .iter()
            .map(|d| ExportSeries {
                program: self.topo.programs[d.prog].name.clone(),
                region: self.topo.programs[d.prog].exports[d.region].name.clone(),
                times: d.recs.iter().map(|r| r.times.clone()).collect(),
                actions: d.recs.iter().map(|r| r.actions.clone()).collect(),
                request_arrivals: d.recs.iter().map(|r| r.request_arrivals.clone()).collect(),
            })
            .collect();
        let import_done = self.imp_drives.iter().map(|d| d.iters.clone()).collect();
        let mut traces = Vec::new();
        for (prog, rank, conn) in std::mem::take(&mut self.traced) {
            if let Some(trace) = self.exp_nodes[prog][rank].take_trace(conn) {
                traces.push((self.topo.programs[prog].name.clone(), rank, conn, trace));
            }
        }
        Ok(TopoReport {
            duration,
            stats,
            matches: self.matches,
            export_series,
            import_done,
            traces,
            metrics: self.metrics.snapshot(),
        })
    }

    fn dispatch(&mut self, event: Ev) -> Result<(), SimError> {
        match event {
            Ev::Export { drive, rank } => {
                let d = &self.exp_drives[drive];
                let (prog, region) = (d.prog, d.region);
                let iter = d.recs[rank].iter;
                let ts = PeriodicSchedule::new(d.t0, d.dt)?.at(iter)?;
                let fx = match self.exp_nodes[prog][rank].on_export(region, ts) {
                    Err(EngineError::Port(PortError::BufferFull { .. })) => {
                        // Stall: the export retries when a control message
                        // frees buffer space.
                        self.exp_drives[drive].recs[rank].blocked = true;
                        return Ok(());
                    }
                    other => other?,
                };
                let d = &mut self.exp_drives[drive];
                let call_cost = if fx.copy {
                    self.cost.memcpy_time(d.piece_bytes[rank]) + self.cost.export_overhead
                } else {
                    self.cost.export_overhead
                };
                self.metrics.phases.add_virtual(Phase::Export, call_cost);
                {
                    let rec = &mut d.recs[rank];
                    rec.times.push(call_cost);
                    rec.actions
                        .push(fx.actions.iter().map(|&(c, a)| (c, a.into())).collect());
                    rec.iter += 1;
                }
                let next = d.recs[rank].iter < d.count;
                let compute = d.compute[rank];
                let mut tx = DesTransport {
                    queue: &mut self.queue,
                    topo: &self.topo,
                    cost: &self.cost,
                    delay: call_cost,
                    chaos: self.chaos.as_mut(),
                    metrics: &self.metrics,
                };
                deliver_all(&mut tx, Endpoint::Proc { prog, rank }, fx.msgs)?;
                if next {
                    self.queue
                        .schedule(call_cost + compute, Ev::Export { drive, rank });
                }
            }

            Ev::ImpCall { drive, rank } => {
                let d = &self.imp_drives[drive];
                let iter = d.iters[rank];
                if iter >= d.count {
                    return Ok(());
                }
                let ts = PeriodicSchedule::new(d.t0, d.dt)?.at(iter)?;
                let conn = d.conn;
                let prog = d.prog;
                let (_req, msg) = self.imp_nodes[prog][rank].begin_import(conn, ts)?;
                self.imp_drives[drive].waiting[rank] = true;
                self.imp_drives[drive].wait_start[rank] = self.queue.now().0;
                let mut tx = DesTransport {
                    queue: &mut self.queue,
                    topo: &self.topo,
                    cost: &self.cost,
                    delay: 0.0,
                    chaos: self.chaos.as_mut(),
                    metrics: &self.metrics,
                };
                deliver_all(&mut tx, Endpoint::Proc { prog, rank }, vec![msg])?;
                self.check_import_done(drive, rank)?;
            }

            Ev::Deliver { to, msg } => self.deliver(to, msg)?,

            Ev::Piece {
                prog,
                rank,
                conn,
                req,
            } => {
                self.imp_nodes[prog][rank].on_piece(conn, req)?;
                let drive = self.imp_drive_of[&conn];
                self.check_import_done(drive, rank)?;
            }
        }
        Ok(())
    }

    fn deliver(&mut self, to: Endpoint, msg: CtrlMsg) -> Result<(), SimError> {
        match to {
            Endpoint::Rep { prog } => {
                let rep = self.reps[prog]
                    .as_mut()
                    .ok_or_else(|| SimError::Config("message for a rep-less program".into()))?;
                let outs = rep.on_msg(&self.topo, msg)?;
                // Record each collective resolution as it is announced by
                // the exporter's rep.
                for out in &outs {
                    if let Outgoing::Ctrl {
                        msg: CtrlMsg::Answer { conn, answer, .. },
                        ..
                    } = out
                    {
                        self.matches[conn.0 as usize].push(match answer {
                            couplink_proto::RepAnswer::Match(m) => Some(*m),
                            couplink_proto::RepAnswer::NoMatch => None,
                        });
                    }
                }
                let mut tx = DesTransport {
                    queue: &mut self.queue,
                    topo: &self.topo,
                    cost: &self.cost,
                    delay: 0.0,
                    chaos: self.chaos.as_mut(),
                    metrics: &self.metrics,
                };
                deliver_all(&mut tx, Endpoint::Rep { prog }, outs)?;
            }
            Endpoint::Proc { prog, rank } => match msg {
                CtrlMsg::ForwardRequest { conn, req, ts } => {
                    let drive = self.exp_drive_of[&conn];
                    let iter_now = self.exp_drives[drive].recs[rank].iter;
                    self.exp_drives[drive].recs[rank]
                        .request_arrivals
                        .push((conn, iter_now));
                    let fx = self.exp_nodes[prog][rank].on_request(conn, req, ts)?;
                    let mut tx = DesTransport {
                        queue: &mut self.queue,
                        topo: &self.topo,
                        cost: &self.cost,
                        delay: 0.0,
                        chaos: self.chaos.as_mut(),
                        metrics: &self.metrics,
                    };
                    deliver_all(&mut tx, Endpoint::Proc { prog, rank }, fx.msgs)?;
                    self.wake_blocked(drive, rank);
                }
                CtrlMsg::BuddyHelp { conn, req, answer } => {
                    let drive = self.exp_drive_of[&conn];
                    let fx = self.exp_nodes[prog][rank].on_buddy_help(conn, req, answer)?;
                    let mut tx = DesTransport {
                        queue: &mut self.queue,
                        topo: &self.topo,
                        cost: &self.cost,
                        delay: 0.0,
                        chaos: self.chaos.as_mut(),
                        metrics: &self.metrics,
                    };
                    deliver_all(&mut tx, Endpoint::Proc { prog, rank }, fx.msgs)?;
                    self.wake_blocked(drive, rank);
                }
                CtrlMsg::AnswerBcast { conn, req, answer } => {
                    self.imp_nodes[prog][rank].on_answer(conn, req, answer)?;
                    let drive = self.imp_drive_of[&conn];
                    self.check_import_done(drive, rank)?;
                }
                other => {
                    return Err(SimError::Config(format!(
                        "unroutable process message {other:?}"
                    )))
                }
            },
        }
        Ok(())
    }

    /// Control traffic may have freed buffer space: wake a stalled exporter.
    fn wake_blocked(&mut self, drive: usize, rank: usize) {
        let rec = &mut self.exp_drives[drive].recs[rank];
        if rec.blocked {
            rec.blocked = false;
            self.queue.schedule(0.0, Ev::Export { drive, rank });
        }
    }

    /// If importer `rank` of `drive` is waiting and its current import has
    /// finished, advance it to the next iteration.
    fn check_import_done(&mut self, drive: usize, rank: usize) -> Result<(), SimError> {
        let d = &mut self.imp_drives[drive];
        let node = &mut self.imp_nodes[d.prog][rank];
        if d.waiting[rank] && matches!(node.state(d.conn), Some(ImportState::Done { .. })) {
            node.finish(d.conn);
            d.waiting[rank] = false;
            self.metrics
                .phases
                .add_virtual(Phase::Import, self.queue.now().0 - d.wait_start[rank]);
            d.iters[rank] += 1;
            if d.iters[rank] < d.count {
                self.queue.schedule(d.compute, Ev::ImpCall { drive, rank });
            }
        }
        Ok(())
    }
}
