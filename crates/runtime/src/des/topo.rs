//! Deterministic discrete-event simulation of an arbitrary coupling
//! topology.
//!
//! This is the simulator side of the shared engine: any number of programs,
//! each with its own process count, rep, export/import schedules and
//! per-rank compute costs; any set of connections, including one exported
//! region feeding several importers. The protocol itself lives in
//! [`crate::engine`] — this module only turns [`Outgoing`] messages into
//! events with modelled latencies and advances virtual time.
//!
//! The single-pair simulator ([`crate::des::coupled::CoupledSim`]) is a thin
//! adapter over this driver; for pair topologies the event schedule (times
//! *and* tie-breaking insertion order) is identical to the original
//! hand-written pair loop, so Figure-4 outputs are bit-for-bit stable.

use crate::cost::CostModel;
use crate::des::coupled::{ActionKind, SimError};
use crate::des::{EventQueue, SimTime};
use crate::engine::reliable::expendable;
use crate::engine::{
    ctrl_class, deliver_all, tree, ChaosConfig, ChaosState, CrashTarget, Endpoint, EngineError,
    Expiry, ExportNode, ImportNode, Outgoing, Reliability, RepNode, RetryPolicy, Topology,
    Transport, WireMeta,
};
use couplink_metrics::{CtrlClass, EngineMetrics, MetricsSnapshot, Phase};
use couplink_proto::{
    ConnectionId, CtrlMsg, ExportStats, ImportState, PortError, RepAnswer, RequestId, Trace,
};
use couplink_time::{PeriodicSchedule, Timestamp};
use std::collections::HashMap;
use std::sync::Arc;

impl From<EngineError> for SimError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::Port(e) => SimError::Port(e),
            EngineError::Rep(e) => SimError::Rep(e),
            EngineError::Import(e) => SimError::Import(e),
            EngineError::UnexpectedMessage(what) => SimError::Config(what.into()),
        }
    }
}

/// Periodic export schedule for one program's exported region.
#[derive(Debug, Clone)]
pub struct ExportSchedule {
    /// Program name.
    pub program: String,
    /// Exported region name.
    pub region: String,
    /// Timestamp of export `i` is `t0 + i * dt`.
    pub t0: f64,
    /// Timestamp step.
    pub dt: f64,
    /// Number of export iterations each process performs.
    pub count: usize,
    /// Per-rank compute seconds per iteration (index = rank).
    pub compute: Vec<f64>,
}

/// Periodic import schedule for one program's imported region.
#[derive(Debug, Clone)]
pub struct ImportSchedule {
    /// Program name.
    pub program: String,
    /// Imported region name.
    pub region: String,
    /// Timestamp of import `j` is `t0 + j * dt`.
    pub t0: f64,
    /// Timestamp step.
    pub dt: f64,
    /// Number of import iterations each process performs.
    pub count: usize,
    /// Compute seconds per iteration (same for all ranks).
    pub compute: f64,
    /// One-time startup cost before the first iteration.
    pub startup: f64,
}

/// Configuration of a topology simulation.
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// The coupling topology.
    pub topology: Topology,
    /// One schedule per exported region (all must be covered).
    pub exports: Vec<ExportSchedule>,
    /// One schedule per imported region (all must be covered).
    pub imports: Vec<ImportSchedule>,
    /// Whether the buddy-help optimization is enabled.
    pub buddy_help: bool,
    /// Operation costs.
    pub cost: CostModel,
    /// Per-process framework buffer capacity in objects (`None` =
    /// unbounded).
    pub buffer_capacity: Option<usize>,
    /// Route collectives (forward requests, answer broadcasts, buddy-help)
    /// down the deterministic k-ary distribution tree ([`tree`]) instead of
    /// flat per-rank fan-out: the rep talks only to its tree children and
    /// each rank relays to its own subtree.
    pub hierarchical: bool,
}

/// Per-rank series of one export schedule, in the report.
#[derive(Debug, Clone)]
pub struct ExportSeries {
    /// Program name.
    pub program: String,
    /// Region name.
    pub region: String,
    /// Per rank: seconds charged to each export call.
    pub times: Vec<Vec<f64>>,
    /// Per rank, per call: what each connection did with the export.
    pub actions: Vec<Vec<Vec<(ConnectionId, ActionKind)>>>,
    /// Per rank: `(connection, export-iteration count at arrival)` for each
    /// forwarded request, in arrival order.
    pub request_arrivals: Vec<Vec<(ConnectionId, usize)>>,
}

/// Results of a topology run.
#[derive(Debug, Clone)]
pub struct TopoReport {
    /// Virtual time at which the last event executed.
    pub duration: f64,
    /// Per connection, per exporter rank: final port statistics.
    pub stats: Vec<Vec<ExportStats>>,
    /// Per connection: the collective answer of each request, in resolution
    /// order (`Some(m)` for a match at `m`, `None` for NO MATCH).
    pub matches: Vec<Vec<Option<Timestamp>>>,
    /// One series per export schedule, in configuration order.
    pub export_series: Vec<ExportSeries>,
    /// Per import schedule, per rank: completed import iterations.
    pub import_done: Vec<Vec<usize>>,
    /// Collected event traces: `(program, rank, connection, trace)`.
    pub traces: Vec<(String, usize, ConnectionId, Trace)>,
    /// End-of-run engine instrumentation. The counter half is deterministic:
    /// two runs of the same configuration produce identical values.
    pub metrics: MetricsSnapshot,
}

/// Virtual-time detection latency of the heartbeat-failover path: how long
/// after a rep's last heartbeat its members conclude it is dead and promote
/// a successor. The threaded fabric runs real heartbeats; the simulator
/// schedules the conclusive staleness check directly at
/// `crash_time + HB_TIMEOUT`, which is the deterministic equivalent of
/// members polling `now - last_beat > HB_TIMEOUT` every beat interval.
const HB_TIMEOUT: f64 = 0.25;

#[derive(Debug)]
enum Ev {
    /// Process `rank` of export drive `drive` performs its next export.
    Export { drive: usize, rank: usize },
    /// Process `rank` of import drive `drive` makes its next import call.
    ImpCall { drive: usize, rank: usize },
    /// A control message arrives at an endpoint. `meta` is present exactly
    /// when the reliability layer is armed and the message is sequenced.
    Deliver {
        to: Endpoint,
        msg: CtrlMsg,
        meta: Option<WireMeta>,
    },
    /// A piece of matched data arrives at an importing process.
    Piece {
        prog: usize,
        rank: usize,
        conn: ConnectionId,
        req: RequestId,
    },
    /// A link-layer ack from `from` reaches `to` (the original sender).
    AckMsg {
        to: Endpoint,
        from: Endpoint,
        seq: u64,
    },
    /// Poll the reliability layer for expired ack deadlines.
    RetryCheck,
    /// A crashed rep restarts from its journal.
    RepRestart { prog: usize },
    /// Members' heartbeat staleness check concludes the rep is dead: the
    /// lowest-rank live process takes over as successor.
    HbCheck { prog: usize },
}

/// Bookkeeping for one armed crash fault (simulator side: rep targets).
#[derive(Debug)]
struct FaultRun {
    fault: crate::engine::CrashFault,
    /// Messages the target rep has consumed so far.
    consumed: u64,
    /// The crash has happened.
    fired: bool,
    /// The rep is currently dead (crashed, not yet recovered).
    dead: bool,
    /// Virtual time of the crash.
    crash_time: f64,
}

struct ExpRec {
    iter: usize,
    times: Vec<f64>,
    actions: Vec<Vec<(ConnectionId, ActionKind)>>,
    request_arrivals: Vec<(ConnectionId, usize)>,
    /// Blocked on a full buffer, waiting for control traffic to free space.
    blocked: bool,
}

struct ExpDrive {
    prog: usize,
    region: usize,
    t0: f64,
    dt: f64,
    count: usize,
    compute: Vec<f64>,
    piece_bytes: Vec<usize>,
    recs: Vec<ExpRec>,
}

struct ImpDrive {
    prog: usize,
    conn: ConnectionId,
    t0: f64,
    dt: f64,
    count: usize,
    compute: f64,
    startup: f64,
    iters: Vec<usize>,
    waiting: Vec<bool>,
    /// Virtual time each rank's in-flight import call started.
    wait_start: Vec<f64>,
}

/// Schedules engine messages as simulator events with modelled latencies.
struct DesTransport<'a> {
    queue: &'a mut EventQueue<Ev>,
    topo: &'a Topology,
    cost: &'a CostModel,
    /// The endpoint emitting this step's messages (the reliability layer
    /// keys its links by directed `(from, to)` pairs).
    from: Endpoint,
    /// Extra delay before network costs (the emitting call's own cost).
    delay: f64,
    /// Seeded fault injection for control messages, if enabled.
    chaos: Option<&'a mut ChaosState>,
    /// Ack/timeout/retransmit state, armed only for fault plans the
    /// transport cannot heal by itself.
    rel: Option<&'a mut Reliability>,
    /// Monotone per-run counter feeding the permanent-loss draw: every
    /// delivery attempt draws independently.
    nonce: &'a mut u64,
    /// Degradation knob: suppress every buddy-help delivery (the announce
    /// still registers, times out and is metered as a degraded buffer).
    drop_buddy_help: bool,
    /// Run-wide instrumentation.
    metrics: &'a EngineMetrics,
}

impl Transport for DesTransport<'_> {
    type Error = SimError;

    fn ctrl(&mut self, to: Endpoint, msg: CtrlMsg) -> Result<(), SimError> {
        self.metrics.ctrl(ctrl_class(&msg)).inc();
        if matches!(msg, CtrlMsg::Coalesced { .. }) {
            self.metrics.ctrl_coalesced.inc();
        }
        self.metrics
            .phases
            .add_virtual(Phase::Ctrl, self.cost.ctrl_time());
        let nominal = self.delay + self.cost.ctrl_time();
        let meta = match self.rel.as_deref_mut() {
            None => None,
            Some(rel) => {
                let meta = rel.register(self.from, to, &msg, self.queue.now().0);
                // Both the degradation knob and a permanent-loss draw make
                // this copy vanish; the pending entry just registered is
                // what later retransmits (or abandons) it.
                if self.drop_buddy_help && expendable(&msg) {
                    return Ok(());
                }
                let n = *self.nonce;
                *self.nonce += 1;
                if let Some(chaos) = self.chaos.as_deref() {
                    if chaos.config().lost(n, to, &msg) {
                        return Ok(());
                    }
                }
                meta
            }
        };
        match self.chaos.as_deref_mut() {
            None => {
                self.queue.schedule(nominal, Ev::Deliver { to, msg, meta });
            }
            Some(chaos) => {
                // Chaos plans absolute delivery times (possibly several, for
                // duplicated commutative messages) on top of the nominal
                // arrival, with FIFO-class streams clamped to their
                // watermark so per-stream order is preserved.
                let base_at = self.queue.now().0 + nominal;
                for at in chaos.deliveries(base_at, to, &msg) {
                    self.queue
                        .schedule_at(SimTime(at), Ev::Deliver { to, msg, meta });
                }
            }
        }
        Ok(())
    }

    fn transfer(
        &mut self,
        from: Endpoint,
        conn: ConnectionId,
        req: RequestId,
        _m: Timestamp,
    ) -> Result<(), SimError> {
        let Endpoint::Proc { rank, .. } = from else {
            return Err(SimError::Config("data transfer emitted by a rep".into()));
        };
        self.metrics.transfers.inc();
        let ct = self.topo.conn(conn);
        for t in ct.plan.sends_from(rank) {
            let bytes = t.rect.cells() * std::mem::size_of::<f64>();
            self.metrics.bytes_transferred.add(bytes as u64);
            self.metrics
                .phases
                .add_virtual(Phase::Transfer, self.cost.data_time(bytes));
            self.queue.schedule(
                self.delay + self.cost.data_time(bytes),
                Ev::Piece {
                    prog: ct.importer_prog,
                    rank: t.dst,
                    conn,
                    req,
                },
            );
        }
        Ok(())
    }
}

/// Coalesced buddy-help frames stashed per `(prog, rank)` until the
/// matching forward request arrives.
type HelpStash = HashMap<(usize, usize), Vec<(ConnectionId, RequestId, RepAnswer)>>;

/// The topology simulator. Construct with [`TopologySim::new`], optionally
/// enable traces with [`TopologySim::trace`], run with [`TopologySim::run`].
pub struct TopologySim {
    topo: Topology,
    cost: CostModel,
    queue: EventQueue<Ev>,
    exp_drives: Vec<ExpDrive>,
    imp_drives: Vec<ImpDrive>,
    /// Export drive serving each connection (on its exporter program).
    exp_drive_of: HashMap<ConnectionId, usize>,
    /// Import drive serving each connection.
    imp_drive_of: HashMap<ConnectionId, usize>,
    exp_nodes: Vec<Vec<ExportNode>>,
    imp_nodes: Vec<Vec<ImportNode>>,
    reps: Vec<Option<RepNode>>,
    matches: Vec<Vec<Option<Timestamp>>>,
    traced: Vec<(usize, usize, ConnectionId)>,
    chaos: Option<ChaosState>,
    buddy_help: bool,
    hierarchical: bool,
    /// Mutation 3: relay rank 0 silently drops coalesced answers on its
    /// first subtree edge (armed by the simulation-test harness only).
    relay_drop: bool,
    /// Coalesced buddy-help that arrived at `(prog, rank)` before the
    /// matching forward request (tree frames commute, so chaos delays can
    /// reorder them past the FIFO-ordered forward); applied on arrival.
    help_stash: HelpStash,
    /// Highest forward-request id `(prog, rank)` has seen per connection —
    /// the gate deciding whether early help must be stashed (the export
    /// port cannot distinguish "never forwarded here yet" from "resolved
    /// and pruned" once any request completed).
    fwd_seen: HashMap<(usize, usize, ConnectionId), u64>,
    /// Timeout/backoff parameters used when the reliability layer arms.
    policy: RetryPolicy,
    /// Armed at run start iff the fault plan needs it; `None` keeps the
    /// event schedule bit-identical to the pre-reliability engine.
    rel: Option<Reliability>,
    fault: Option<FaultRun>,
    /// Per program: `(wire metadata, message)` of everything its rep has
    /// consumed, in consumption order — the recovery journal.
    journals: Vec<Vec<(WireMeta, CtrlMsg)>>,
    /// Earliest virtual time a `RetryCheck` event is already scheduled for.
    retry_at: Option<f64>,
    /// Permanent-loss attempt counter (see `DesTransport::nonce`).
    nonce: u64,
    drop_buddy_help: bool,
    metrics: Arc<EngineMetrics>,
}

impl TopologySim {
    /// Builds the simulation, validating schedules against the topology.
    pub fn new(cfg: TopologyConfig) -> Result<Self, SimError> {
        let topo = cfg.topology;
        let mut exp_drives = Vec::new();
        let mut imp_drives = Vec::new();
        let mut exp_drive_of = HashMap::new();
        let mut imp_drive_of = HashMap::new();

        for s in &cfg.exports {
            let prog = topo
                .program_idx(&s.program)
                .ok_or_else(|| SimError::Config(format!("unknown program {}", s.program)))?;
            let region = topo.programs[prog].export_idx(&s.region).ok_or_else(|| {
                SimError::Config(format!("{} exports no region {}", s.program, s.region))
            })?;
            let procs = topo.programs[prog].procs;
            if s.compute.len() != procs {
                return Err(SimError::Config(format!(
                    "export schedule for {}.{} has {} compute entries for {} processes",
                    s.program,
                    s.region,
                    s.compute.len(),
                    procs
                )));
            }
            if s.dt <= 0.0 {
                return Err(SimError::Config("timestamp steps must be positive".into()));
            }
            let decomp = &topo.programs[prog].exports[region].decomp;
            let piece_bytes = (0..procs)
                .map(|rank| decomp.owned(rank).cells() * std::mem::size_of::<f64>())
                .collect();
            for &cid in &topo.programs[prog].exports[region].conns {
                exp_drive_of.insert(cid, exp_drives.len());
            }
            exp_drives.push(ExpDrive {
                prog,
                region,
                t0: s.t0,
                dt: s.dt,
                count: s.count,
                compute: s.compute.clone(),
                piece_bytes,
                recs: (0..procs)
                    .map(|_| ExpRec {
                        iter: 0,
                        times: Vec::with_capacity(s.count),
                        actions: Vec::with_capacity(s.count),
                        request_arrivals: Vec::new(),
                        blocked: false,
                    })
                    .collect(),
            });
        }
        for s in &cfg.imports {
            let prog = topo
                .program_idx(&s.program)
                .ok_or_else(|| SimError::Config(format!("unknown program {}", s.program)))?;
            let region = topo.programs[prog].import_idx(&s.region).ok_or_else(|| {
                SimError::Config(format!("{} imports no region {}", s.program, s.region))
            })?;
            if s.dt <= 0.0 {
                return Err(SimError::Config("timestamp steps must be positive".into()));
            }
            let conn = topo.programs[prog].imports[region].conn;
            let procs = topo.programs[prog].procs;
            imp_drive_of.insert(conn, imp_drives.len());
            imp_drives.push(ImpDrive {
                prog,
                conn,
                t0: s.t0,
                dt: s.dt,
                count: s.count,
                compute: s.compute,
                startup: s.startup,
                iters: vec![0; procs],
                waiting: vec![false; procs],
                wait_start: vec![0.0; procs],
            });
        }
        // Every region of the topology needs a schedule, or its processes
        // would never run.
        for (pi, p) in topo.programs.iter().enumerate() {
            for (ri, r) in p.exports.iter().enumerate() {
                if !exp_drives.iter().any(|d| d.prog == pi && d.region == ri) {
                    return Err(SimError::Config(format!(
                        "no export schedule for {}.{}",
                        p.name, r.name
                    )));
                }
            }
            for r in &p.imports {
                if !imp_drive_of.contains_key(&r.conn) {
                    return Err(SimError::Config(format!(
                        "no import schedule for {}.{}",
                        p.name, r.name
                    )));
                }
            }
        }

        let metrics = Arc::new(EngineMetrics::new());
        let exp_nodes = topo
            .programs
            .iter()
            .enumerate()
            .map(|(pi, p)| {
                if p.exports.is_empty() {
                    Vec::new()
                } else {
                    (0..p.procs)
                        .map(|rank| {
                            let mut node = ExportNode::new(&topo, pi, rank, cfg.buffer_capacity);
                            node.set_metrics(Arc::clone(&metrics));
                            node
                        })
                        .collect()
                }
            })
            .collect();
        let imp_nodes = topo
            .programs
            .iter()
            .enumerate()
            .map(|(pi, p)| {
                if p.imports.is_empty() {
                    Vec::new()
                } else {
                    (0..p.procs)
                        .map(|rank| {
                            let mut node = ImportNode::new(&topo, pi, rank);
                            node.set_metrics(Arc::clone(&metrics));
                            node
                        })
                        .collect()
                }
            })
            .collect();
        let reps = topo
            .programs
            .iter()
            .enumerate()
            .map(|(pi, p)| {
                if p.exports.is_empty() && p.imports.is_empty() {
                    None
                } else {
                    Some(RepNode::new(&topo, pi, cfg.buddy_help, cfg.hierarchical))
                }
            })
            .collect();
        let matches = vec![Vec::new(); topo.conns.len()];
        let journals = vec![Vec::new(); topo.programs.len()];
        if cfg.hierarchical {
            // Every process derives the identical tree from the topology,
            // so the depth is a shared property of the run.
            let depth = topo
                .programs
                .iter()
                .map(|p| tree::depth(p.procs))
                .max()
                .unwrap_or(0);
            metrics.tree_depth.set(depth as u64);
        }
        Ok(TopologySim {
            topo,
            cost: cfg.cost,
            queue: EventQueue::new(),
            exp_drives,
            imp_drives,
            exp_drive_of,
            imp_drive_of,
            exp_nodes,
            imp_nodes,
            reps,
            matches,
            traced: Vec::new(),
            chaos: None,
            buddy_help: cfg.buddy_help,
            hierarchical: cfg.hierarchical,
            relay_drop: false,
            help_stash: HashMap::new(),
            fwd_seen: HashMap::new(),
            policy: RetryPolicy {
                // Virtual-time scales: control latency and chaos jitter are
                // a few milliseconds, so the first ack deadline sits well
                // clear of an honest round trip while retries still settle
                // long before a typical schedule ends.
                base_timeout: 0.05,
                backoff: 2.0,
                max_timeout: 0.4,
                ..RetryPolicy::default()
            },
            rel: None,
            fault: None,
            journals,
            retry_at: None,
            nonce: 0,
            drop_buddy_help: false,
            metrics,
        })
    }

    /// The run-wide instrumentation shared by every node and the transport.
    pub fn metrics(&self) -> Arc<EngineMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Enables seeded fault injection (delay, duplication, drop-with-retry,
    /// and — when the plan sets them — permanent loss and a rep crash) on
    /// control-message delivery. The run stays fully deterministic: the
    /// same configuration and seed replay the same event schedule. Fault
    /// plans that need the reliability layer arm it automatically; agent
    /// crash targets are a threaded-fabric fault and are ignored here.
    pub fn chaos(&mut self, cfg: ChaosConfig) {
        if let Some(fault) = cfg.crash {
            if matches!(fault.target, CrashTarget::Rep(_)) {
                self.fault = Some(FaultRun {
                    fault,
                    consumed: 0,
                    fired: false,
                    dead: false,
                    crash_time: 0.0,
                });
            }
        }
        self.chaos = Some(ChaosState::new(cfg));
    }

    /// Overrides the reliability layer's timeout/backoff parameters. The
    /// `retransmit: false` knob exists for negative tests proving the
    /// liveness oracle fires when the protocol has no recovery.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Degradation knob: every buddy-help announcement is permanently lost
    /// (while all other traffic is untouched), forcing the conservative
    /// buffering fallback. Arms the reliability layer so each abandoned
    /// announcement is metered as a `degraded_buffers` count.
    pub fn drop_buddy_help(&mut self) {
        self.drop_buddy_help = true;
    }

    /// Arms the deliberate pruning-rule bug on every export port, for
    /// mutation-testing the oracles (see
    /// [`couplink_proto::ExportPort::set_unsound_help_skip`]).
    pub fn arm_unsound_help_skip(&mut self) {
        for nodes in &mut self.exp_nodes {
            for node in nodes {
                node.arm_unsound_help_skip();
            }
        }
    }

    /// Arms the deliberate stale-announcement bug on every export port, for
    /// mutation-testing the oracles (see
    /// [`couplink_proto::ExportPort::set_unsound_stale_skip`]).
    pub fn arm_unsound_stale_skip(&mut self) {
        for nodes in &mut self.exp_nodes {
            for node in nodes {
                node.arm_unsound_stale_skip();
            }
        }
    }

    /// Arms the third deliberate bug, for mutation-testing the oracles on a
    /// hierarchical topology: relay rank 0 silently drops every coalesced
    /// answer broadcast on its first subtree edge (before the reliability
    /// layer ever sees the send, so nothing retransmits it). The starved
    /// subtree never completes its imports; the liveness oracle must fire.
    pub fn arm_relay_drop(&mut self) {
        self.relay_drop = true;
    }

    /// Enables Figure-5 style event tracing for one connection on one
    /// exporting process.
    pub fn trace(
        &mut self,
        program: &str,
        rank: usize,
        conn: ConnectionId,
    ) -> Result<(), SimError> {
        let prog = self
            .topo
            .program_idx(program)
            .ok_or_else(|| SimError::Config(format!("unknown program {program}")))?;
        self.exp_nodes[prog][rank].enable_trace(conn);
        self.traced.push((prog, rank, conn));
        Ok(())
    }

    /// Runs to completion and returns the report.
    pub fn run(mut self) -> Result<TopoReport, SimError> {
        // Arm the reliability layer exactly when the fault plan contains
        // something the transport wrapper cannot heal. Fault-free runs (and
        // plain delay/duplicate/drop-with-retry chaos) never construct it,
        // so their event schedules stay bit-identical.
        let needs_rel = self.drop_buddy_help
            || self
                .chaos
                .as_ref()
                .is_some_and(|c| c.config().needs_reliability());
        if needs_rel {
            self.rel = Some(Reliability::new(self.policy, Arc::clone(&self.metrics)));
        }
        // Kick off every process: exporters compute before their first
        // export; importers pay startup + compute before their first call.
        // All export drives start before all import drives, matching the
        // pair simulator's kickoff order.
        for (d, drive) in self.exp_drives.iter().enumerate() {
            for rank in 0..drive.recs.len() {
                self.queue
                    .schedule(drive.compute[rank], Ev::Export { drive: d, rank });
            }
        }
        for (d, drive) in self.imp_drives.iter().enumerate() {
            for rank in 0..drive.iters.len() {
                self.queue.schedule(
                    drive.startup + drive.compute,
                    Ev::ImpCall { drive: d, rank },
                );
            }
        }

        self.metrics.queue_depth.set(self.queue.len() as u64);
        while let Some((_, event)) = self.queue.pop() {
            self.dispatch(event)?;
            self.arm_retry_check();
            self.metrics.queue_depth.set(self.queue.len() as u64);
        }

        let duration = self.queue.now().0;
        let stats = self
            .topo
            .conns
            .iter()
            .map(|ct| {
                (0..self.topo.programs[ct.exporter_prog].procs)
                    .map(|rank| {
                        self.exp_nodes[ct.exporter_prog][rank]
                            .port_stats(ct.id)
                            .clone()
                    })
                    .collect()
            })
            .collect();
        let export_series = self
            .exp_drives
            .iter()
            .map(|d| ExportSeries {
                program: self.topo.programs[d.prog].name.clone(),
                region: self.topo.programs[d.prog].exports[d.region].name.clone(),
                times: d.recs.iter().map(|r| r.times.clone()).collect(),
                actions: d.recs.iter().map(|r| r.actions.clone()).collect(),
                request_arrivals: d.recs.iter().map(|r| r.request_arrivals.clone()).collect(),
            })
            .collect();
        let import_done = self.imp_drives.iter().map(|d| d.iters.clone()).collect();
        let mut traces = Vec::new();
        for (prog, rank, conn) in std::mem::take(&mut self.traced) {
            if let Some(trace) = self.exp_nodes[prog][rank].take_trace(conn) {
                traces.push((self.topo.programs[prog].name.clone(), rank, conn, trace));
            }
        }
        Ok(TopoReport {
            duration,
            stats,
            matches: self.matches,
            export_series,
            import_done,
            traces,
            metrics: self.metrics.snapshot(),
        })
    }

    fn dispatch(&mut self, event: Ev) -> Result<(), SimError> {
        match event {
            Ev::Export { drive, rank } => {
                let d = &self.exp_drives[drive];
                let (prog, region) = (d.prog, d.region);
                let iter = d.recs[rank].iter;
                let ts = PeriodicSchedule::new(d.t0, d.dt)?.at(iter)?;
                let fx = match self.exp_nodes[prog][rank].on_export(region, ts) {
                    Err(EngineError::Port(PortError::BufferFull { .. })) => {
                        // Stall: the export retries when a control message
                        // frees buffer space.
                        self.exp_drives[drive].recs[rank].blocked = true;
                        return Ok(());
                    }
                    other => other?,
                };
                let d = &mut self.exp_drives[drive];
                let call_cost = if fx.copy {
                    self.cost.memcpy_time(d.piece_bytes[rank]) + self.cost.export_overhead
                } else {
                    self.cost.export_overhead
                };
                self.metrics.phases.add_virtual(Phase::Export, call_cost);
                {
                    let rec = &mut d.recs[rank];
                    rec.times.push(call_cost);
                    rec.actions
                        .push(fx.actions.iter().map(|&(c, a)| (c, a.into())).collect());
                    rec.iter += 1;
                }
                let next = d.recs[rank].iter < d.count;
                let compute = d.compute[rank];
                let mut tx = DesTransport {
                    queue: &mut self.queue,
                    topo: &self.topo,
                    cost: &self.cost,
                    from: Endpoint::Proc { prog, rank },
                    delay: call_cost,
                    chaos: self.chaos.as_mut(),
                    rel: self.rel.as_mut(),
                    nonce: &mut self.nonce,
                    drop_buddy_help: self.drop_buddy_help,
                    metrics: &self.metrics,
                };
                deliver_all(&mut tx, Endpoint::Proc { prog, rank }, fx.msgs)?;
                if next {
                    self.queue
                        .schedule(call_cost + compute, Ev::Export { drive, rank });
                }
            }

            Ev::ImpCall { drive, rank } => {
                let d = &self.imp_drives[drive];
                let iter = d.iters[rank];
                if iter >= d.count {
                    return Ok(());
                }
                let ts = PeriodicSchedule::new(d.t0, d.dt)?.at(iter)?;
                let conn = d.conn;
                let prog = d.prog;
                let (_req, msg) = self.imp_nodes[prog][rank].begin_import(conn, ts)?;
                self.imp_drives[drive].waiting[rank] = true;
                self.imp_drives[drive].wait_start[rank] = self.queue.now().0;
                let mut tx = DesTransport {
                    queue: &mut self.queue,
                    topo: &self.topo,
                    cost: &self.cost,
                    from: Endpoint::Proc { prog, rank },
                    delay: 0.0,
                    chaos: self.chaos.as_mut(),
                    rel: self.rel.as_mut(),
                    nonce: &mut self.nonce,
                    drop_buddy_help: self.drop_buddy_help,
                    metrics: &self.metrics,
                };
                deliver_all(&mut tx, Endpoint::Proc { prog, rank }, vec![msg])?;
                self.check_import_done(drive, rank)?;
            }

            Ev::Deliver { to, msg, meta } => self.deliver(to, meta, msg)?,

            Ev::Piece {
                prog,
                rank,
                conn,
                req,
            } => {
                self.imp_nodes[prog][rank].on_piece(conn, req)?;
                let drive = self.imp_drive_of[&conn];
                self.check_import_done(drive, rank)?;
            }

            Ev::AckMsg { to, from, seq } => {
                if let Some(rel) = self.rel.as_mut() {
                    rel.on_ack(to, from, seq);
                }
            }

            Ev::RetryCheck => self.on_retry_check(),

            Ev::RepRestart { prog } | Ev::HbCheck { prog } => self.recover_rep(prog)?,
        }
        Ok(())
    }

    /// Delivers one wire packet, running it through the reliability layer's
    /// dedup/hold-back and the crash fault when those are armed.
    fn deliver(
        &mut self,
        to: Endpoint,
        meta: Option<WireMeta>,
        msg: CtrlMsg,
    ) -> Result<(), SimError> {
        let Some(meta) = meta else {
            // Fault-free path: no sequencing, no acks, no crashes.
            return self.consume(to, msg);
        };
        if let Endpoint::Rep { prog } = to {
            if self.rep_dead(prog) {
                // Deliveries to a dead rep vanish unacked; their senders
                // keep retransmitting them to the recovered rep.
                return Ok(());
            }
            if self.crash_due(prog) {
                self.crash_rep(prog);
                return Ok(());
            }
        }
        let got = self
            .rel
            .as_mut()
            .expect("sequenced packet without reliability layer")
            .receive(meta, to, msg);
        for seq in &got.acks {
            self.send_ack(to, meta.from, *seq);
        }
        for (dm, m) in got.deliver {
            if let Endpoint::Rep { prog } = to {
                // Journal *before* consumption: journal = processed = acked
                // is the crash-recovery invariant.
                self.journals[prog].push((dm, m));
                if let Some(f) = self.fault.as_mut() {
                    if f.fault.target == CrashTarget::Rep(prog) {
                        f.consumed += 1;
                    }
                }
            }
            self.consume(to, m)?;
        }
        Ok(())
    }

    /// Whether `prog`'s rep is currently crashed.
    fn rep_dead(&self, prog: usize) -> bool {
        self.fault
            .as_ref()
            .is_some_and(|f| f.dead && f.fault.target == CrashTarget::Rep(prog))
    }

    /// Whether the armed crash fault fires on the next packet for `prog`'s
    /// rep: it has consumed its quota, so the arriving packet kills it.
    fn crash_due(&self, prog: usize) -> bool {
        self.fault.as_ref().is_some_and(|f| {
            !f.fired && f.fault.target == CrashTarget::Rep(prog) && f.consumed >= f.fault.after_msgs
        })
    }

    /// Kills `prog`'s rep: wipes its receive-side reliability state (held
    /// back, unacked messages die with it) and schedules recovery — either
    /// the configured restart or the heartbeat-timeout failover check.
    fn crash_rep(&mut self, prog: usize) {
        let now = self.queue.now().0;
        let restart_after = {
            let f = self.fault.as_mut().expect("crash_due checked");
            f.fired = true;
            f.dead = true;
            f.crash_time = now;
            f.fault.restart_after
        };
        if let Some(rel) = self.rel.as_mut() {
            rel.crash_endpoint(Endpoint::Rep { prog });
        }
        match restart_after {
            Some(d) => self.queue.schedule(d, Ev::RepRestart { prog }),
            None => self.queue.schedule(HB_TIMEOUT, Ev::HbCheck { prog }),
        }
    }

    /// Brings `prog`'s rep role back — the restarted process or the
    /// lowest-rank live successor — by replaying the consumed-message
    /// journal and restoring the receive-side dedup/ordering state, then
    /// meters the recovery.
    fn recover_rep(&mut self, prog: usize) -> Result<(), SimError> {
        let crash_time = match self.fault.as_mut() {
            Some(f) if f.dead => {
                f.dead = false;
                f.crash_time
            }
            _ => return Ok(()),
        };
        let mut rep = RepNode::new(&self.topo, prog, self.buddy_help, self.hierarchical);
        let msgs: Vec<CtrlMsg> = self.journals[prog].iter().map(|&(_, m)| m).collect();
        rep.replay(&self.topo, &msgs)?;
        self.reps[prog] = Some(rep);
        let metas: Vec<WireMeta> = self.journals[prog].iter().map(|&(m, _)| m).collect();
        if let Some(rel) = self.rel.as_mut() {
            rel.restore_delivered(Endpoint::Rep { prog }, &metas);
        }
        self.metrics.failovers.inc();
        self.metrics
            .recovery_ms
            .observe(((self.queue.now().0 - crash_time) * 1000.0) as u64);
        Ok(())
    }

    /// Sends a link-layer ack `from → to` (best-effort: unsequenced, may be
    /// lost or duplicated; the sender's retransmit + receiver's re-ack heal
    /// a lost one).
    fn send_ack(&mut self, from: Endpoint, to: Endpoint, seq: u64) {
        self.metrics.ctrl(CtrlClass::Ack).inc();
        self.metrics
            .phases
            .add_virtual(Phase::Ctrl, self.cost.ctrl_time());
        let msg = CtrlMsg::Ack { seq };
        let n = self.nonce;
        self.nonce += 1;
        let base = self.queue.now().0 + self.cost.ctrl_time();
        match self.chaos.as_mut() {
            Some(chaos) => {
                if chaos.config().lost(n, to, &msg) {
                    return;
                }
                for at in chaos.deliveries(base, to, &msg) {
                    self.queue
                        .schedule_at(SimTime(at), Ev::AckMsg { to, from, seq });
                }
            }
            None => self
                .queue
                .schedule_at(SimTime(base), Ev::AckMsg { to, from, seq }),
        }
    }

    /// Re-sends an expired pending message (same wire metadata, fresh loss
    /// draw).
    fn resend(&mut self, to: Endpoint, meta: WireMeta, msg: CtrlMsg) {
        self.metrics.ctrl(ctrl_class(&msg)).inc();
        if matches!(msg, CtrlMsg::Coalesced { .. }) {
            self.metrics.ctrl_coalesced.inc();
        }
        self.metrics
            .phases
            .add_virtual(Phase::Ctrl, self.cost.ctrl_time());
        if self.drop_buddy_help && expendable(&msg) {
            return;
        }
        let n = self.nonce;
        self.nonce += 1;
        let base = self.queue.now().0 + self.cost.ctrl_time();
        match self.chaos.as_mut() {
            Some(chaos) => {
                if chaos.config().lost(n, to, &msg) {
                    return;
                }
                for at in chaos.deliveries(base, to, &msg) {
                    self.queue.schedule_at(
                        SimTime(at),
                        Ev::Deliver {
                            to,
                            msg,
                            meta: Some(meta),
                        },
                    );
                }
            }
            None => self.queue.schedule_at(
                SimTime(base),
                Ev::Deliver {
                    to,
                    msg,
                    meta: Some(meta),
                },
            ),
        }
    }

    /// Processes every expired ack deadline: retransmits ride back out,
    /// abandonments just stop (an expendable one was already metered; a
    /// reliable one leaves unresolved work for the liveness oracle).
    fn on_retry_check(&mut self) {
        self.retry_at = None;
        let now = self.queue.now().0;
        let due = match self.rel.as_mut() {
            Some(rel) => rel.due(now),
            None => return,
        };
        for e in due {
            match e {
                Expiry::Resend { to, meta, msg } => self.resend(to, meta, msg),
                Expiry::Abandon { .. } => {}
            }
        }
    }

    /// Keeps a `RetryCheck` event scheduled for the earliest pending ack
    /// deadline.
    fn arm_retry_check(&mut self) {
        let Some(d) = self.rel.as_ref().and_then(|r| r.next_deadline()) else {
            return;
        };
        if self.retry_at.is_some_and(|t| t <= d) {
            return;
        }
        let at = d.max(self.queue.now().0);
        self.queue.schedule_at(SimTime(at), Ev::RetryCheck);
        self.retry_at = Some(at);
    }

    /// Hands one control message to its node — the pre-reliability delivery
    /// path, shared by fault-free runs and packets that cleared the
    /// reliability layer.
    fn consume(&mut self, to: Endpoint, msg: CtrlMsg) -> Result<(), SimError> {
        match to {
            Endpoint::Rep { prog } => {
                let rep = self.reps[prog]
                    .as_mut()
                    .ok_or_else(|| SimError::Config("message for a rep-less program".into()))?;
                let outs = rep.on_msg(&self.topo, msg)?;
                // Record each collective resolution as it is announced by
                // the exporter's rep.
                for out in &outs {
                    if let Outgoing::Ctrl {
                        msg: CtrlMsg::Answer { conn, answer, .. },
                        ..
                    } = out
                    {
                        self.matches[conn.0 as usize].push(match answer {
                            couplink_proto::RepAnswer::Match(m) => Some(*m),
                            couplink_proto::RepAnswer::NoMatch => None,
                        });
                    }
                }
                let mut tx = DesTransport {
                    queue: &mut self.queue,
                    topo: &self.topo,
                    cost: &self.cost,
                    from: Endpoint::Rep { prog },
                    delay: 0.0,
                    chaos: self.chaos.as_mut(),
                    rel: self.rel.as_mut(),
                    nonce: &mut self.nonce,
                    drop_buddy_help: self.drop_buddy_help,
                    metrics: &self.metrics,
                };
                deliver_all(&mut tx, Endpoint::Rep { prog }, outs)?;
            }
            Endpoint::Proc { prog, rank } => match msg {
                CtrlMsg::ForwardRequest { conn, req, ts } => {
                    let drive = self.exp_drive_of[&conn];
                    let iter_now = self.exp_drives[drive].recs[rank].iter;
                    self.exp_drives[drive].recs[rank]
                        .request_arrivals
                        .push((conn, iter_now));
                    let fx = self.exp_nodes[prog][rank].on_request(conn, req, ts)?;
                    let mut tx = DesTransport {
                        queue: &mut self.queue,
                        topo: &self.topo,
                        cost: &self.cost,
                        from: Endpoint::Proc { prog, rank },
                        delay: 0.0,
                        chaos: self.chaos.as_mut(),
                        rel: self.rel.as_mut(),
                        nonce: &mut self.nonce,
                        drop_buddy_help: self.drop_buddy_help,
                        metrics: &self.metrics,
                    };
                    deliver_all(&mut tx, Endpoint::Proc { prog, rank }, fx.msgs)?;
                    self.wake_blocked(drive, rank);
                    if self.hierarchical {
                        let seen = self.fwd_seen.entry((prog, rank, conn)).or_insert(req.0);
                        *seen = (*seen).max(req.0);
                        // Apply help that overtook this forward, then relay
                        // the request to the subtree.
                        let stashed: Vec<_> = match self.help_stash.get_mut(&(prog, rank)) {
                            None => Vec::new(),
                            Some(list) => {
                                let (now, later) =
                                    list.drain(..).partition(|&(c, r, _)| c == conn && r == req);
                                *list = later;
                                now
                            }
                        };
                        for (c, r, a) in stashed {
                            self.apply_help(prog, rank, c, r, a)?;
                        }
                        let procs = self.topo.programs[prog].procs;
                        for child in tree::children(rank, procs) {
                            self.relay_ctrl(
                                Endpoint::Proc { prog, rank },
                                Endpoint::Proc { prog, rank: child },
                                CtrlMsg::ForwardRequest { conn, req, ts },
                            );
                        }
                    }
                }
                CtrlMsg::Coalesced {
                    conn,
                    req,
                    answer,
                    bcast,
                    help,
                } => {
                    if help {
                        let forwarded = self
                            .fwd_seen
                            .get(&(prog, rank, conn))
                            .is_some_and(|&m| m >= req.0);
                        if forwarded {
                            self.apply_help(prog, rank, conn, req, answer)?;
                        } else {
                            // The export port cannot tell "not forwarded
                            // here yet" apart from "resolved and pruned";
                            // hold the help until the forward arrives.
                            self.help_stash
                                .entry((prog, rank))
                                .or_default()
                                .push((conn, req, answer));
                        }
                    }
                    if bcast {
                        self.imp_nodes[prog][rank].on_answer(conn, req, answer)?;
                        let drive = self.imp_drive_of[&conn];
                        self.check_import_done(drive, rank)?;
                    }
                    let procs = self.topo.programs[prog].procs;
                    for child in tree::children(rank, procs) {
                        self.relay_ctrl(
                            Endpoint::Proc { prog, rank },
                            Endpoint::Proc { prog, rank: child },
                            msg,
                        );
                    }
                }
                CtrlMsg::BuddyHelp { conn, req, answer } => {
                    let drive = self.exp_drive_of[&conn];
                    let fx = self.exp_nodes[prog][rank].on_buddy_help(conn, req, answer)?;
                    let mut tx = DesTransport {
                        queue: &mut self.queue,
                        topo: &self.topo,
                        cost: &self.cost,
                        from: Endpoint::Proc { prog, rank },
                        delay: 0.0,
                        chaos: self.chaos.as_mut(),
                        rel: self.rel.as_mut(),
                        nonce: &mut self.nonce,
                        drop_buddy_help: self.drop_buddy_help,
                        metrics: &self.metrics,
                    };
                    deliver_all(&mut tx, Endpoint::Proc { prog, rank }, fx.msgs)?;
                    self.wake_blocked(drive, rank);
                }
                CtrlMsg::AnswerBcast { conn, req, answer } => {
                    self.imp_nodes[prog][rank].on_answer(conn, req, answer)?;
                    let drive = self.imp_drive_of[&conn];
                    self.check_import_done(drive, rank)?;
                }
                other => {
                    return Err(SimError::Config(format!(
                        "unroutable process message {other:?}"
                    )))
                }
            },
        }
        Ok(())
    }

    /// Applies one buddy-help announcement (flat or coalesced) to an
    /// exporting process and moves whatever it emits.
    fn apply_help(
        &mut self,
        prog: usize,
        rank: usize,
        conn: ConnectionId,
        req: RequestId,
        answer: RepAnswer,
    ) -> Result<(), SimError> {
        let drive = self.exp_drive_of[&conn];
        let fx = self.exp_nodes[prog][rank].on_buddy_help(conn, req, answer)?;
        let mut tx = DesTransport {
            queue: &mut self.queue,
            topo: &self.topo,
            cost: &self.cost,
            from: Endpoint::Proc { prog, rank },
            delay: 0.0,
            chaos: self.chaos.as_mut(),
            rel: self.rel.as_mut(),
            nonce: &mut self.nonce,
            drop_buddy_help: self.drop_buddy_help,
            metrics: &self.metrics,
        };
        deliver_all(&mut tx, Endpoint::Proc { prog, rank }, fx.msgs)?;
        self.wake_blocked(drive, rank);
        Ok(())
    }

    /// Relays one hierarchical tree frame one hop down the subtree. Relay
    /// hops are metered as `ctrl_relay` (plus `ctrl_coalesced` for
    /// coalesced frames) instead of per-class origin traffic, and ride the
    /// same reliability and chaos disciplines as origin sends.
    fn relay_ctrl(&mut self, from: Endpoint, to: Endpoint, msg: CtrlMsg) {
        if self.relay_drop {
            if let (Endpoint::Proc { rank: fr, .. }, Endpoint::Proc { rank: tr, .. }) = (from, to) {
                if fr == 0
                    && tr == tree::BRANCH
                    && matches!(msg, CtrlMsg::Coalesced { bcast: true, .. })
                {
                    return;
                }
            }
        }
        self.metrics.ctrl_relay.inc();
        if matches!(msg, CtrlMsg::Coalesced { .. }) {
            self.metrics.ctrl_coalesced.inc();
        }
        self.metrics
            .phases
            .add_virtual(Phase::Ctrl, self.cost.ctrl_time());
        let nominal = self.cost.ctrl_time();
        let meta = match self.rel.as_mut() {
            None => None,
            Some(rel) => {
                let meta = rel.register(from, to, &msg, self.queue.now().0);
                if self.drop_buddy_help && expendable(&msg) {
                    return;
                }
                let n = self.nonce;
                self.nonce += 1;
                if let Some(chaos) = self.chaos.as_ref() {
                    if chaos.config().lost(n, to, &msg) {
                        return;
                    }
                }
                meta
            }
        };
        match self.chaos.as_mut() {
            None => self.queue.schedule(nominal, Ev::Deliver { to, msg, meta }),
            Some(chaos) => {
                let base_at = self.queue.now().0 + nominal;
                for at in chaos.deliveries(base_at, to, &msg) {
                    self.queue
                        .schedule_at(SimTime(at), Ev::Deliver { to, msg, meta });
                }
            }
        }
    }

    /// Control traffic may have freed buffer space: wake a stalled exporter.
    fn wake_blocked(&mut self, drive: usize, rank: usize) {
        let rec = &mut self.exp_drives[drive].recs[rank];
        if rec.blocked {
            rec.blocked = false;
            self.queue.schedule(0.0, Ev::Export { drive, rank });
        }
    }

    /// If importer `rank` of `drive` is waiting and its current import has
    /// finished, advance it to the next iteration.
    fn check_import_done(&mut self, drive: usize, rank: usize) -> Result<(), SimError> {
        let d = &mut self.imp_drives[drive];
        let node = &mut self.imp_nodes[d.prog][rank];
        if d.waiting[rank] && matches!(node.state(d.conn), Some(ImportState::Done { .. })) {
            node.finish(d.conn);
            d.waiting[rank] = false;
            self.metrics
                .phases
                .add_virtual(Phase::Import, self.queue.now().0 - d.wait_start[rank]);
            d.iters[rank] += 1;
            if d.iters[rank] < d.count {
                self.queue.schedule(d.compute, Ev::ImpCall { drive, rank });
            }
        }
        Ok(())
    }
}
