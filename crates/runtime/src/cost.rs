//! The cost model used by the discrete-event runtime.

use serde::{Deserialize, Serialize};

/// Virtual-time costs of the operations the framework performs.
///
/// Defaults approximate the paper's testbed (Pentium 4 2.8 GHz nodes on
/// Gigabit Ethernet): ~1.5 GB/s memory copy bandwidth, ~60 µs small-message
/// latency, ~110 MB/s effective TCP throughput. Absolute figure values are
/// not expected to match the paper (different hardware); shapes are.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Framework buffering (memcpy) bandwidth, bytes per second.
    pub memcpy_bytes_per_sec: f64,
    /// Fixed overhead of an export call that does not copy (bookkeeping
    /// only), seconds.
    pub export_overhead: f64,
    /// One-way latency of a small control message (request, response,
    /// buddy-help, answer), seconds.
    pub ctrl_latency: f64,
    /// One-way latency component of a data message, seconds.
    pub net_latency: f64,
    /// Network bandwidth for data transfers, bytes per second.
    pub net_bytes_per_sec: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            memcpy_bytes_per_sec: 1.5e9,
            export_overhead: 2.0e-6,
            ctrl_latency: 60.0e-6,
            net_latency: 100.0e-6,
            net_bytes_per_sec: 110.0e6,
        }
    }
}

impl CostModel {
    /// Seconds to memcpy `bytes` into the framework buffer.
    pub fn memcpy_time(&self, bytes: usize) -> f64 {
        bytes as f64 / self.memcpy_bytes_per_sec
    }

    /// Seconds for a data message of `bytes` to reach the destination.
    pub fn data_time(&self, bytes: usize) -> f64 {
        self.net_latency + bytes as f64 / self.net_bytes_per_sec
    }

    /// Seconds for a control message to reach the destination.
    pub fn ctrl_time(&self) -> f64 {
        self.ctrl_latency
    }

    /// A zero-cost model (all operations instantaneous) — useful in tests
    /// that check protocol logic rather than timing.
    pub fn free() -> Self {
        CostModel {
            memcpy_bytes_per_sec: f64::INFINITY,
            export_overhead: 0.0,
            ctrl_latency: 0.0,
            net_latency: 0.0,
            net_bytes_per_sec: f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memcpy_time_scales_with_bytes() {
        let c = CostModel {
            memcpy_bytes_per_sec: 1e9,
            ..CostModel::default()
        };
        assert!((c.memcpy_time(1_000_000_000) - 1.0).abs() < 1e-12);
        assert_eq!(c.memcpy_time(0), 0.0);
    }

    #[test]
    fn data_time_includes_latency() {
        let c = CostModel {
            net_latency: 0.5,
            net_bytes_per_sec: 2.0,
            ..CostModel::default()
        };
        assert!((c.data_time(4) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn free_model_is_zero_cost() {
        let c = CostModel::free();
        assert_eq!(c.memcpy_time(1 << 30), 0.0);
        assert_eq!(c.data_time(1 << 30), 0.0);
        assert_eq!(c.ctrl_time(), 0.0);
    }

    #[test]
    fn default_is_gige_scale() {
        let c = CostModel::default();
        // An 8 MB piece (1024x1024 f64 / 1 proc share of F) copies in ~5 ms.
        let t = c.memcpy_time(8 << 20);
        assert!(t > 1e-3 && t < 20e-3, "memcpy time {t}");
    }
}
