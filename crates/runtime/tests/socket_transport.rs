//! End-to-end tests of the socket transport: real `couplink-node`
//! processes on loopback, driven through the bootstrap orchestrator.
//!
//! Covers the happy path on both backends, the bootstrap rejection path
//! (duplicate program claim), the negative transport behaviours (peer
//! death mid-run must surface as `ProcessCrash`, a stalled peer must hit
//! the import timeout, not hang), and the shutdown-order regression (a
//! peer draining early must not fail the survivors).

use std::path::PathBuf;
use std::time::Duration;

use couplink_runtime::net::{
    run_plan, BootstrapError, ExportSpec, ImportSpec, KillSpec, NetOptions, NetReport, NodeFault,
    NodePlan, SocketBackend,
};

fn node_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_couplink-node"))
}

/// Two programs, two ranks each, one connection `E0.r -> I0.m`, exact
/// timestamp matches under REG.
fn pair_plan(exports: usize, imports: usize) -> NodePlan {
    NodePlan {
        config_text: "E0 c0 /bin/e0 2\nI0 c0 /bin/i0 2\n#\nE0.r I0.m REG 0.125\n".into(),
        grid: (8, 8),
        exports: vec![ExportSpec {
            program: "E0".into(),
            region: 0,
            t0: 0.5,
            dt: 0.5,
            count: exports,
            compute: vec![0.0, 0.0],
        }],
        imports: vec![ImportSpec {
            program: "I0".into(),
            region: 0,
            t0: 0.5,
            dt: 0.5,
            count: imports,
            compute: 0.0,
            startup: 0.0,
        }],
        buddy_help: false,
        import_timeout_s: 10.0,
        time_scale: 0.05,
        verify_values: true,
        traces: vec![(0, 0, 0), (0, 1, 0)],
        chaos: None,
        fault: None,
        hierarchical: false,
        wal_dir: None,
        restart: false,
    }
}

fn opts(backend: SocketBackend) -> NetOptions {
    NetOptions {
        backend,
        deadline: Duration::from_secs(60),
        ..NetOptions::new(node_bin())
    }
}

fn assert_clean(rep: &NetReport, imports: usize) {
    assert!(rep.crashed.is_empty(), "crashed: {:?}", rep.crashed);
    assert!(
        rep.shutdown_errors.is_empty(),
        "shutdown errors: {:?}",
        rep.shutdown_errors
    );
    assert!(
        rep.export_errors.is_empty(),
        "export errors: {:?}",
        rep.export_errors
    );
    // Both importer ranks completed every import without error.
    assert_eq!(rep.imports_done.len(), 2);
    for (prog, rank, done, err) in &rep.imports_done {
        assert_eq!(*err, None, "importer {prog}.{rank} failed");
        assert_eq!(*done as usize, imports, "importer {prog}.{rank} short");
    }
    // Every import matched (exact-timestamp schedule) — and the matches
    // survived the node's in-process value verification.
    assert_eq!(rep.matches[0].len(), imports);
    assert!(rep.matches[0].iter().all(Option::is_some));
    // Exporter stats for both ranks came home.
    assert_eq!(rep.stats[0].len(), 2);
    assert!(rep.stats[0].iter().all(|s| s.exports > 0));
    // Frames actually crossed sockets; nothing was rejected; nobody
    // reconnected.
    assert!(rep.counters.net_frames > 0, "no frames crossed the wire");
    assert!(rep.counters.net_bytes > 0);
    assert_eq!(rep.counters.net_codec_rejects, 0);
    assert_eq!(rep.counters.net_reconnects, 0);
}

#[test]
fn uds_pair_end_to_end() {
    let rep = run_plan(&pair_plan(6, 6), &opts(SocketBackend::Uds)).expect("bootstrap");
    assert_clean(&rep, 6);
    // The armed traces came home from the exporter process.
    assert_eq!(rep.traces.len(), 2);
}

#[test]
fn tcp_smoke() {
    let rep = run_plan(&pair_plan(4, 4), &opts(SocketBackend::Tcp)).expect("bootstrap");
    assert_clean(&rep, 4);
}

#[test]
fn duplicate_program_rejected_at_bootstrap() {
    let mut o = opts(SocketBackend::Uds);
    // Program 1's node claims to be program 0: whichever hello lands
    // second trips the duplicate check.
    o.misclaim = Some((1, 0));
    match run_plan(&pair_plan(2, 2), &o) {
        Err(BootstrapError::DuplicateProgram { prog: 0 }) => {}
        other => panic!("expected DuplicateProgram, got {other:?}"),
    }
}

#[test]
fn peer_death_mid_run_surfaces_as_process_crash() {
    let mut plan = pair_plan(8, 8);
    // Exporter rank 0 exits the whole process after its first export.
    plan.fault = Some(NodeFault::AbortAfterExports {
        prog: 0,
        rank: 0,
        after: 1,
    });
    let rep = run_plan(&plan, &opts(SocketBackend::Uds)).expect("bootstrap");
    assert_eq!(rep.crashed, vec![0], "exporter process should be gone");
    // The importer must FAIL, promptly, with the peer death named — not
    // hang until the harness deadline and not report success.
    assert_eq!(rep.imports_done.len(), 2);
    let failed = rep
        .imports_done
        .iter()
        .filter(|(_, _, _, err)| {
            err.as_deref()
                .is_some_and(|e| e.contains("process crashed") && e.contains("program 0"))
        })
        .count();
    assert!(
        failed > 0,
        "no importer saw the crash: {:?}",
        rep.imports_done
    );
    // Nobody completed the full schedule.
    assert!(rep.imports_done.iter().all(|(_, _, done, _)| *done < 8));
}

#[test]
fn stalled_peer_hits_import_timeout() {
    let mut plan = pair_plan(4, 4);
    plan.import_timeout_s = 1.0;
    // The importer program's mesh readers park: its sockets stay open
    // but answers and pieces are never processed.
    plan.fault = Some(NodeFault::StallMeshReader { prog: 1 });
    let rep = run_plan(&plan, &opts(SocketBackend::Uds)).expect("bootstrap");
    assert!(rep.crashed.is_empty(), "nothing died: {:?}", rep.crashed);
    let timed_out = rep
        .imports_done
        .iter()
        .filter(|(_, _, _, err)| {
            err.as_deref()
                .is_some_and(|e| e.contains("import timed out"))
        })
        .count();
    assert_eq!(
        timed_out, 2,
        "both ranks must time out: {:?}",
        rep.imports_done
    );
}

#[test]
fn durable_journal_clean_run_stays_clean() {
    let mut o = opts(SocketBackend::Uds);
    o.durable = true;
    let rep = run_plan(&pair_plan(5, 5), &o).expect("bootstrap");
    // A file-backed journal on a fault-free run must be invisible: no
    // replay, no truncation, no reconnects — only appends.
    assert_clean(&rep, 5);
    assert!(rep.counters.wal_appends > 0, "nothing was journaled");
    assert!(rep.counters.wal_bytes > 0);
    assert_eq!(rep.counters.wal_replayed, 0);
    assert_eq!(rep.counters.wal_truncated, 0);
}

/// Stretches the pair schedule so that requests are already flowing (and
/// journaled on the exporter) when a mid-run fault lands, and the
/// importer still has imports outstanding across the recovery.
fn slow_pair_plan() -> NodePlan {
    let mut plan = pair_plan(8, 8);
    plan.exports[0].compute = vec![0.2, 0.2];
    plan.imports[0].compute = 0.5;
    plan
}

#[test]
fn sigkilled_exporter_restarts_from_journal_and_completes() {
    let mut o = opts(SocketBackend::Uds);
    o.kill_restart = Some(KillSpec {
        prog: 0,
        corrupt_wal: false,
    });
    let rep = run_plan(&slow_pair_plan(), &o).expect("bootstrap");
    // The kill is real but recovered-from: nobody is *reported* crashed,
    // every import completes (with in-process value verification — the
    // replayed exports must be bit-identical), and the mesh saw at least
    // one reconnect while the restarted node replayed its journal.
    assert!(rep.crashed.is_empty(), "crashed: {:?}", rep.crashed);
    assert!(
        rep.shutdown_errors.is_empty(),
        "shutdown errors: {:?}",
        rep.shutdown_errors
    );
    assert!(
        rep.export_errors.is_empty(),
        "export errors: {:?}",
        rep.export_errors
    );
    for (prog, rank, done, err) in &rep.imports_done {
        assert_eq!(*err, None, "importer {prog}.{rank} failed");
        assert_eq!(*done, 8, "importer {prog}.{rank} short");
    }
    assert!(rep.matches[0].iter().all(Option::is_some));
    assert!(rep.counters.net_reconnects >= 1, "nobody reconnected");
    assert!(
        rep.counters.wal_replayed >= 1,
        "the restart did not replay the journal"
    );
}

#[test]
fn corrupted_journal_fails_the_restart_loudly() {
    let mut o = opts(SocketBackend::Uds);
    o.kill_restart = Some(KillSpec {
        prog: 0,
        corrupt_wal: true,
    });
    // A flipped byte mid-journal must fail the whole run with the
    // corruption named — never silently truncate or skip the record.
    match run_plan(&slow_pair_plan(), &o) {
        Err(BootstrapError::Wire(e)) => {
            assert!(e.contains("corrupt"), "error must name the corruption: {e}");
        }
        other => panic!("expected a corrupt-journal failure, got {other:?}"),
    }
}

#[test]
fn severed_link_redials_and_completes() {
    let mut plan = slow_pair_plan();
    // The exporter half-closes its link to the importer five frames in;
    // both sides must abandon the socket, re-dial/re-accept, and replay
    // unacked traffic from the reliability journal.
    plan.fault = Some(NodeFault::SeverLink {
        prog: 0,
        peer: 1,
        after_tx: 5,
    });
    let mut o = opts(SocketBackend::Uds);
    o.durable = true;
    let rep = run_plan(&plan, &o).expect("bootstrap");
    assert!(rep.crashed.is_empty(), "crashed: {:?}", rep.crashed);
    assert!(
        rep.shutdown_errors.is_empty(),
        "shutdown errors: {:?}",
        rep.shutdown_errors
    );
    for (prog, rank, done, err) in &rep.imports_done {
        assert_eq!(*err, None, "importer {prog}.{rank} failed");
        assert_eq!(*done, 8, "importer {prog}.{rank} short");
    }
    assert!(rep.matches[0].iter().all(Option::is_some));
    assert!(rep.counters.net_reconnects >= 1, "nobody reconnected");
}

#[test]
fn early_peer_drain_tolerated_by_survivors() {
    let mut plan = pair_plan(5, 5);
    // The importer drains and exits the moment its own app work is done,
    // without waiting for the coordinated DRAIN — its sockets close while
    // the exporter is still up. The exporter must treat the EOF as a
    // normal drain, not a crash.
    plan.fault = Some(NodeFault::DrainEarly { prog: 1 });
    let rep = run_plan(&plan, &opts(SocketBackend::Uds)).expect("bootstrap");
    assert!(rep.crashed.is_empty(), "crashed: {:?}", rep.crashed);
    assert!(
        rep.shutdown_errors.is_empty(),
        "shutdown errors: {:?}",
        rep.shutdown_errors
    );
    for (_, _, done, err) in &rep.imports_done {
        assert_eq!(*err, None);
        assert_eq!(*done, 5);
    }
    assert_eq!(rep.stats[0].len(), 2, "exporter stats must come home");
}
