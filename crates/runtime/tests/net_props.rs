//! Transport-layer properties for the vectored tx path and buffer pool.
//!
//! The contract under test: however the `LinkWriter` coalesces frames
//! into `writev` bursts, the byte stream a peer observes is identical
//! to what per-frame `write_all` calls would have produced — framing is
//! a property of the bytes, not of the syscall boundaries.

use std::io::Read;
use std::os::unix::net::UnixStream;
use std::sync::Arc;

use couplink_metrics::EngineMetrics;
use couplink_runtime::net::link::{BufPool, Conn, LinkWriter};
use proptest::prelude::*;

/// Spawns a writer over one end of a socketpair, sends `frames`, retires
/// the writer, and returns every byte the other end observed.
fn stream_through_writer(frames: &[Vec<u8>], metrics: Option<Arc<EngineMetrics>>) -> Vec<u8> {
    let (a, b) = UnixStream::pair().expect("socketpair");
    let pool = metrics.as_ref().map(|m| BufPool::new(Some(Arc::clone(m))));
    let w = LinkWriter::spawn_with(Conn::Uds(a), "test".to_string(), None, metrics, pool);
    for f in frames {
        assert!(w.send(f.clone()), "writer died mid-test");
    }
    let salvage = w.retire();
    assert!(
        salvage.is_empty(),
        "clean retire salvaged {} frames",
        salvage.len()
    );
    let mut got = Vec::new();
    let mut rx = b;
    rx.read_to_end(&mut got).expect("drain peer");
    got
}

proptest! {
    /// Whatever frame sequence is enqueued — and however the writer
    /// thread happens to slice it into bursts — the peer's byte stream
    /// equals the plain concatenation that sequential `write_all` calls
    /// produce. Totals stay under the socket buffer so the writer never
    /// blocks against the deferred reader.
    #[test]
    fn coalesced_writer_stream_matches_per_frame_write_all(
        frames in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..512),
            1..40,
        ),
    ) {
        let expected: Vec<u8> = frames.concat();
        let got = stream_through_writer(&frames, None);
        prop_assert_eq!(got, expected);
    }
}

/// Large deterministic load with a concurrent reader: partial writes and
/// multi-frame bursts both occur, the stream still matches, and the tx
/// meters account for every frame and byte exactly once.
#[test]
fn writer_under_load_preserves_stream_and_meters_exactly() {
    // Deterministic LCG so the byte stream is reproducible.
    let mut seed = 0x2545F4914F6CDD1Du64;
    let mut next = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        seed
    };
    let frames: Vec<Vec<u8>> = (0..200)
        .map(|_| {
            let len = 1 + (next() % 4096) as usize;
            (0..len).map(|_| next() as u8).collect()
        })
        .collect();
    let expected: Vec<u8> = frames.concat();
    let total: u64 = frames.iter().map(|f| f.len() as u64).sum();

    let (a, b) = UnixStream::pair().expect("socketpair");
    let metrics = Arc::new(EngineMetrics::new());
    let pool = BufPool::new(Some(Arc::clone(&metrics)));
    let reader = std::thread::spawn(move || {
        let mut got = Vec::new();
        let mut rx = b;
        rx.read_to_end(&mut got).expect("drain peer");
        got
    });
    let w = LinkWriter::spawn_with(
        Conn::Uds(a),
        "load".to_string(),
        None,
        Some(Arc::clone(&metrics)),
        Some(pool),
    );
    for f in &frames {
        assert!(w.send(f.clone()));
    }
    assert!(w.retire().is_empty());
    let got = reader.join().expect("reader");

    assert_eq!(
        got, expected,
        "coalesced stream diverged from write_all order"
    );
    assert_eq!(metrics.net_frames.get(), frames.len() as u64);
    assert_eq!(metrics.net_bytes.get(), total);
    let syscalls = metrics.net_syscalls.get();
    assert!(syscalls >= 1);
    assert!(
        syscalls <= frames.len() as u64,
        "vectored writer took more syscalls ({syscalls}) than frames ({})",
        frames.len()
    );
    // Frames credited to multi-frame bursts can never exceed frames sent.
    assert!(metrics.net_writev_frames.get() <= frames.len() as u64);
}

/// The pool recycles by power-of-two class: a returned allocation
/// satisfies any later request that fits its class, and the hit/miss
/// meters record each outcome.
#[test]
fn buf_pool_classes_recycle_and_meter() {
    let metrics = Arc::new(EngineMetrics::new());
    let pool = BufPool::new(Some(Arc::clone(&metrics)));

    // Cold take: nothing shelved, so it's a miss with the asked capacity.
    let buf = pool.take(1024);
    assert_eq!(buf.capacity(), 1024);
    assert_eq!(metrics.net_pool_misses.get(), 1);
    assert_eq!(metrics.net_pool_hits.get(), 0);

    // Return it. `put` shelves by floor(log2(capacity)) while `take`
    // asks by ceil, so only a power-of-two-aligned request is promised
    // the recycled allocation — and any hit has enough room.
    pool.put(buf);
    let again = pool.take(1024);
    assert_eq!(again.capacity(), 1024, "recycled allocation came back");
    assert!(again.is_empty(), "shelved buffers are cleared");
    assert_eq!(metrics.net_pool_hits.get(), 1);
    assert_eq!(metrics.net_pool_misses.get(), 1);

    // An undersized shelf never serves a larger class: asking for more
    // than the shelved capacity is a miss, not a short buffer.
    pool.put(again);
    let big = pool.take(2048);
    assert!(big.capacity() >= 2048);
    assert_eq!(metrics.net_pool_misses.get(), 2);

    // Zero-capacity buffers are never shelved.
    pool.put(Vec::new());
    let still_miss = pool.take(1);
    assert!(still_miss.capacity() >= 1);
    assert_eq!(metrics.net_pool_misses.get(), 3);
}
