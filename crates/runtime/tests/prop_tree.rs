//! Property-based tests of the deterministic k-ary distribution tree
//! (`couplink_runtime::engine::tree`) that hierarchical rep fan-out rides.
//!
//! Every runtime — the discrete-event simulator, the threaded fabric, and
//! each socket-transport process — derives the tree from the validated
//! topology's rank count alone, by calling these exact pure functions. The
//! properties pinned here therefore hold identically on all three: the
//! tree is *connected* (every rank reachable from the rep root), *acyclic*
//! (parents strictly precede children), an *exact cover* (each rank has
//! exactly one inbound edge), *deterministic* (pure arithmetic on `(n,
//! rank)`), and *logarithmic* (depth `⌈log_k n⌉`-ish, per-node fan-out
//! ≤ k). Behavioral identity across runtimes is separately enforced by
//! simtest's cross-runtime counter-equivalence and control-scaling
//! oracles, whose expected values are computed from this same module.

use couplink_runtime::engine::tree;
use proptest::prelude::*;
use std::collections::VecDeque;

/// Breadth-first walk from the virtual rep root; returns each rank's hop
/// count from the rep (rep→child = 1), or panics on an unreachable rank.
fn bfs_levels(n: usize) -> Vec<usize> {
    let mut level = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    for r in tree::root_children(n) {
        level[r] = 1;
        queue.push_back(r);
    }
    while let Some(r) = queue.pop_front() {
        for c in tree::children(r, n) {
            assert_eq!(level[c], usize::MAX, "rank {c} reached twice (n={n})");
            level[c] = level[r] + 1;
            queue.push_back(c);
        }
    }
    level
}

/// The structural invariants for one program size.
fn check_tree(n: usize) {
    // Connected + exact cover: the BFS reaches every rank exactly once.
    let levels = bfs_levels(n);
    for (rank, &lvl) in levels.iter().enumerate() {
        assert_ne!(lvl, usize::MAX, "rank {rank} unreachable (n={n})");
        // The arithmetic depth agrees with the walked depth.
        assert_eq!(lvl, tree::depth_of(rank), "depth_of disagrees (n={n})");
    }
    assert_eq!(
        levels.iter().max().copied().unwrap_or(0),
        tree::depth(n),
        "depth(n) is the max hop count (n={n})"
    );

    for rank in 0..n {
        // Acyclic: every edge points from a smaller index to a larger one,
        // and parent/children are mutual inverses.
        match tree::parent(rank) {
            None => assert!(
                tree::root_children(n).contains(&rank),
                "orphan rank {rank} is not a root child (n={n})"
            ),
            Some(p) => {
                assert!(p < rank, "parent {p} !< child {rank} (n={n})");
                assert!(
                    tree::children(p, n).contains(&rank),
                    "parent {p} disowns {rank} (n={n})"
                );
            }
        }
        // Bounded fan-out: no node ever sends more than k relays.
        assert!(
            tree::children(rank, n).len() <= tree::BRANCH,
            "rank {rank} has {} children (n={n})",
            tree::children(rank, n).len()
        );
    }
    assert!(
        tree::root_children(n).len() <= tree::BRANCH,
        "rep fans out past k (n={n})"
    );

    // Logarithmic: a depth-d tree with fan-out k addresses at most
    // k + k² + … + k^d ranks, and a depth d is only used once depth d-1
    // is exhausted. Both bounds together pin depth = ⌈log-ish⌉ exactly.
    let d = tree::depth(n);
    let capacity = |depth: usize| -> usize {
        let mut total = 0usize;
        let mut layer = 1usize;
        for _ in 0..depth {
            layer *= tree::BRANCH;
            total += layer;
        }
        total
    };
    if n > 0 {
        assert!(n <= capacity(d), "depth {d} cannot address {n} ranks");
        assert!(
            n > capacity(d.saturating_sub(1)),
            "depth {d} used before depth {} was full (n={n})",
            d - 1
        );
    }
}

/// Exhaustive over every size the harness and benches actually use, plus
/// the boundaries where a new tree level opens.
#[test]
fn tree_invariants_exhaustive_to_512() {
    for n in 0..=512 {
        check_tree(n);
    }
}

/// Determinism: the tree is a pure function of `(n, rank)` — recomputing
/// any edge yields the same answer, which is what lets three independent
/// runtimes build the identical tree without exchanging messages.
#[test]
fn tree_is_deterministic() {
    for n in [1usize, 6, 32, 64, 128, 341] {
        let edges = |n: usize| -> Vec<(usize, usize)> {
            (0..n)
                .flat_map(|r| tree::children(r, n).map(move |c| (r, c)))
                .collect()
        };
        assert_eq!(edges(n), edges(n));
        assert_eq!(
            tree::root_children(n).collect::<Vec<_>>(),
            tree::root_children(n).collect::<Vec<_>>()
        );
    }
}

proptest! {
    /// The invariants hold for arbitrary program sizes well past anything
    /// the paper deploys.
    #[test]
    fn tree_invariants_hold_for_arbitrary_sizes(n in 0usize..4096) {
        check_tree(n);
    }
}
