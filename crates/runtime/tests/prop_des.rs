//! Property-based tests of the discrete-event coupled simulation: for random
//! (but well-posed) configurations, the run completes every guaranteed
//! transfer, is deterministic, and buddy-help never changes what is
//! transferred.

use couplink_layout::{Decomposition, Extent2};
use couplink_runtime::{CostModel, CoupledConfig, CoupledSim};
use couplink_time::MatchPolicy;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Cfg {
    exp_procs_grid: (usize, usize),
    imp_procs: usize,
    policy: MatchPolicy,
    tolerance: f64,
    windows: usize,
    slow_factor: f64,
    importer_compute: f64,
    buddy_help: bool,
}

fn cfg() -> impl Strategy<Value = Cfg> {
    (
        prop_oneof![Just((1usize, 1usize)), Just((2, 1)), Just((2, 2))],
        1usize..6,
        prop_oneof![
            Just(MatchPolicy::RegL),
            Just(MatchPolicy::RegU),
            Just(MatchPolicy::Reg)
        ],
        0.7f64..4.9,
        1usize..6,
        1.0f64..20.0,
        1e-5f64..1e-2,
        any::<bool>(),
    )
        .prop_map(
            |(exp_procs_grid, imp_procs, policy, tolerance, windows, slow_factor, importer_compute, buddy_help)| Cfg {
                exp_procs_grid,
                imp_procs,
                policy,
                tolerance,
                windows,
                slow_factor,
                importer_compute,
                buddy_help,
            },
        )
}

fn build(c: &Cfg) -> CoupledConfig {
    let grid = Extent2::new(16, 16);
    let (pr, pc) = c.exp_procs_grid;
    let exporter_decomp = Decomposition::block_2d(grid, pr, pc).unwrap();
    let importer_decomp = Decomposition::row_block(grid, c.imp_procs).unwrap();
    let ne = exporter_decomp.procs();
    let mut exporter_compute = vec![1e-4; ne];
    exporter_compute[ne - 1] = 1e-4 * c.slow_factor;
    CoupledConfig {
        exporter_decomp,
        importer_decomp,
        policy: c.policy,
        tolerance: c.tolerance,
        buddy_help: c.buddy_help,
        // Exports at x.6 cover every request window with margin.
        exports: c.windows * 20 + 25,
        export_t0: 1.6,
        export_dt: 1.0,
        imports: c.windows,
        import_t0: 20.0,
        import_dt: 20.0,
        exporter_compute,
        importer_compute: c.importer_compute,
        importer_startup: 0.0,
        cost: CostModel::default(),
        buffer_capacity: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With exports at `x.6` every time unit and tolerance ≥ 0.7, every
    /// request at a multiple of 20 has a match under every policy: all
    /// importer ranks finish, every exporter rank sends one piece per
    /// request, and no collective violation fires.
    #[test]
    fn all_guaranteed_transfers_complete(c in cfg()) {
        let report = CoupledSim::new(build(&c)).unwrap().run().unwrap();
        prop_assert_eq!(&report.importer_done, &vec![c.windows; c.imp_procs]);
        for stats in &report.stats {
            prop_assert_eq!(stats.sends, c.windows as u64, "{:?}", stats);
            prop_assert_eq!(stats.requests, c.windows as u64);
        }
    }

    /// Identical configurations produce identical reports (virtual-time
    /// determinism), and buddy-help changes only buffering effort.
    #[test]
    fn deterministic_and_transfer_invariant(c in cfg()) {
        let a = CoupledSim::new(build(&c)).unwrap().run().unwrap();
        let b = CoupledSim::new(build(&c)).unwrap().run().unwrap();
        prop_assert_eq!(&a.export_time_series, &b.export_time_series);
        prop_assert_eq!(&a.action_series, &b.action_series);
        prop_assert_eq!(a.duration, b.duration);

        let mut flipped = c.clone();
        flipped.buddy_help = !c.buddy_help;
        let f = CoupledSim::new(build(&flipped)).unwrap().run().unwrap();
        prop_assert_eq!(&f.importer_done, &a.importer_done);
        for (x, y) in a.stats.iter().zip(f.stats.iter()) {
            prop_assert_eq!(x.sends, y.sends);
            // The run with buddy-help enabled never copies more.
            let (with, without) = if c.buddy_help { (x, y) } else { (y, x) };
            prop_assert!(with.memcpys <= without.memcpys);
        }
    }
}
