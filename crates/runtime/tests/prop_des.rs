//! Property-based tests of the discrete-event coupled simulation: for random
//! (but well-posed) configurations, the run completes every guaranteed
//! transfer, is deterministic, buddy-help never changes what is
//! transferred, and — for random multi-program topologies — the threaded
//! fabric delivers exactly the matched timestamps the DES predicts.

use couplink_config::RegionRef;
use couplink_layout::{Decomposition, Extent2, LocalArray};
use couplink_runtime::{
    CostModel, CoupledConfig, CoupledSim, ExportSchedule, Fabric, FabricOptions, ImportSchedule,
    Topology, TopologyConfig, TopologySim,
};
use couplink_time::{ts, MatchPolicy, Timestamp};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct Cfg {
    exp_procs_grid: (usize, usize),
    imp_procs: usize,
    policy: MatchPolicy,
    tolerance: f64,
    windows: usize,
    slow_factor: f64,
    importer_compute: f64,
    buddy_help: bool,
}

fn cfg() -> impl Strategy<Value = Cfg> {
    (
        prop_oneof![Just((1usize, 1usize)), Just((2, 1)), Just((2, 2))],
        1usize..6,
        prop_oneof![
            Just(MatchPolicy::RegL),
            Just(MatchPolicy::RegU),
            Just(MatchPolicy::Reg)
        ],
        0.7f64..4.9,
        1usize..6,
        1.0f64..20.0,
        1e-5f64..1e-2,
        any::<bool>(),
    )
        .prop_map(
            |(
                exp_procs_grid,
                imp_procs,
                policy,
                tolerance,
                windows,
                slow_factor,
                importer_compute,
                buddy_help,
            )| Cfg {
                exp_procs_grid,
                imp_procs,
                policy,
                tolerance,
                windows,
                slow_factor,
                importer_compute,
                buddy_help,
            },
        )
}

fn build(c: &Cfg) -> CoupledConfig {
    let grid = Extent2::new(16, 16);
    let (pr, pc) = c.exp_procs_grid;
    let exporter_decomp = Decomposition::block_2d(grid, pr, pc).unwrap();
    let importer_decomp = Decomposition::row_block(grid, c.imp_procs).unwrap();
    let ne = exporter_decomp.procs();
    let mut exporter_compute = vec![1e-4; ne];
    exporter_compute[ne - 1] = 1e-4 * c.slow_factor;
    CoupledConfig {
        exporter_decomp,
        importer_decomp,
        policy: c.policy,
        tolerance: c.tolerance,
        buddy_help: c.buddy_help,
        // Exports at x.6 cover every request window with margin.
        exports: c.windows * 20 + 25,
        export_t0: 1.6,
        export_dt: 1.0,
        imports: c.windows,
        import_t0: 20.0,
        import_dt: 20.0,
        exporter_compute,
        importer_compute: c.importer_compute,
        importer_startup: 0.0,
        cost: CostModel::default(),
        buffer_capacity: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With exports at `x.6` every time unit and tolerance ≥ 0.7, every
    /// request at a multiple of 20 has a match under every policy: all
    /// importer ranks finish, every exporter rank sends one piece per
    /// request, and no collective violation fires.
    #[test]
    fn all_guaranteed_transfers_complete(c in cfg()) {
        let report = CoupledSim::new(build(&c)).unwrap().run().unwrap();
        prop_assert_eq!(&report.importer_done, &vec![c.windows; c.imp_procs]);
        for stats in &report.stats {
            prop_assert_eq!(stats.sends, c.windows as u64, "{:?}", stats);
            prop_assert_eq!(stats.requests, c.windows as u64);
        }
    }

    /// Identical configurations produce identical reports (virtual-time
    /// determinism), and buddy-help changes only buffering effort.
    #[test]
    fn deterministic_and_transfer_invariant(c in cfg()) {
        let a = CoupledSim::new(build(&c)).unwrap().run().unwrap();
        let b = CoupledSim::new(build(&c)).unwrap().run().unwrap();
        prop_assert_eq!(&a.export_time_series, &b.export_time_series);
        prop_assert_eq!(&a.action_series, &b.action_series);
        prop_assert_eq!(a.duration, b.duration);

        let mut flipped = c.clone();
        flipped.buddy_help = !c.buddy_help;
        let f = CoupledSim::new(build(&flipped)).unwrap().run().unwrap();
        prop_assert_eq!(&f.importer_done, &a.importer_done);
        for (x, y) in a.stats.iter().zip(f.stats.iter()) {
            prop_assert_eq!(x.sends, y.sends);
            // The run with buddy-help enabled never copies more.
            let (with, without) = if c.buddy_help { (x, y) } else { (y, x) };
            prop_assert!(with.memcpys <= without.memcpys);
        }
    }
}

/// A random multi-program topology: 1–2 exporter programs with one region
/// each, 1–3 importer programs each importing from a random exporter (so
/// one region may feed several importers over a multi-connection export).
#[derive(Debug, Clone)]
struct TopoCase {
    /// Process count per exporter program.
    exporters: Vec<usize>,
    /// Per importer program: (procs, source exporter, policy, tolerance,
    /// import iterations).
    importers: Vec<(usize, usize, MatchPolicy, f64, usize)>,
    buddy_help: bool,
}

fn topo_case() -> impl Strategy<Value = TopoCase> {
    proptest::collection::vec(1usize..=2, 1..=2).prop_flat_map(move |exporters| {
        let n_exp = exporters.len();
        (
            Just(exporters),
            proptest::collection::vec(
                (1usize..=2, 0..n_exp, 0u8..3, 0.7f64..4.9, 1usize..=2),
                1..=3,
            ),
            any::<bool>(),
        )
            .prop_map(|(exporters, importers, buddy_help)| TopoCase {
                exporters,
                importers: importers
                    .into_iter()
                    .map(|(procs, src, policy, tol, count)| {
                        let policy = match policy {
                            0 => MatchPolicy::RegL,
                            1 => MatchPolicy::RegU,
                            _ => MatchPolicy::Reg,
                        };
                        (procs, src, policy, tol, count)
                    })
                    .collect(),
                buddy_help,
            })
    })
}

/// Builds the validated topology for a random case: exporters `E<k>` with
/// region `r`, importers `I<j>` with region `q`.
fn topo_of(c: &TopoCase) -> Topology {
    let grid = Extent2::new(8, 8);
    let mut text = String::new();
    for (k, &procs) in c.exporters.iter().enumerate() {
        text.push_str(&format!("E{k} c0 /bin/e{k} {procs}\n"));
    }
    for (j, &(procs, ..)) in c.importers.iter().enumerate() {
        text.push_str(&format!("I{j} c0 /bin/i{j} {procs}\n"));
    }
    text.push_str("#\n");
    for (j, &(_, src, policy, tol, _)) in c.importers.iter().enumerate() {
        text.push_str(&format!("E{src}.r I{j}.q {policy} {tol}\n"));
    }
    let config = couplink_config::parse(&text).unwrap();
    let mut bindings = HashMap::new();
    for (k, &procs) in c.exporters.iter().enumerate() {
        bindings.insert(
            RegionRef::new(format!("E{k}"), "r"),
            Decomposition::row_block(grid, procs).unwrap(),
        );
    }
    for (j, &(procs, ..)) in c.importers.iter().enumerate() {
        bindings.insert(
            RegionRef::new(format!("I{j}"), "q"),
            Decomposition::row_block(grid, procs).unwrap(),
        );
    }
    Topology::from_config(&config, &bindings).unwrap()
}

/// Exports at `1.6, 2.6, …, 50.6` — past every acceptable region any
/// request at 20 or 40 with tolerance < 5 can name.
const TOPO_EXPORTS: usize = 50;

/// Which exporter programs some importer actually connected to (an unused
/// exporter has no region in the topology and nothing to schedule).
fn used_exporters(c: &TopoCase) -> Vec<bool> {
    let mut used = vec![false; c.exporters.len()];
    for &(_, src, ..) in &c.importers {
        used[src] = true;
    }
    used
}

fn des_matches(c: &TopoCase) -> Vec<Vec<Option<Timestamp>>> {
    let used = used_exporters(c);
    let exports = c
        .exporters
        .iter()
        .enumerate()
        .filter(|(k, _)| used[*k])
        .map(|(k, &procs)| ExportSchedule {
            program: format!("E{k}"),
            region: "r".into(),
            t0: 1.6,
            dt: 1.0,
            count: TOPO_EXPORTS,
            compute: vec![1e-4; procs],
        })
        .collect();
    let imports = c
        .importers
        .iter()
        .enumerate()
        .map(|(j, &(.., count))| ImportSchedule {
            program: format!("I{j}"),
            region: "q".into(),
            t0: 20.0,
            dt: 20.0,
            count,
            compute: 1e-3,
            startup: 0.0,
        })
        .collect();
    let sim = TopologySim::new(TopologyConfig {
        topology: topo_of(c),
        exports,
        imports,
        buddy_help: c.buddy_help,
        hierarchical: false,
        cost: CostModel::default(),
        buffer_capacity: None,
    })
    .unwrap();
    sim.run().unwrap().matches
}

fn threaded_matches(c: &TopoCase) -> Vec<Vec<Option<Timestamp>>> {
    let topo = topo_of(c);
    let n_exp = c.exporters.len();
    let mut fabric = Fabric::new(
        topo,
        FabricOptions {
            buddy_help: c.buddy_help,
            ..FabricOptions::default()
        },
    );
    let grid = Extent2::new(8, 8);
    let used = used_exporters(c);
    let mut threads = Vec::new();
    for (k, &procs) in c.exporters.iter().enumerate() {
        if !used[k] {
            continue;
        }
        let decomp = Decomposition::row_block(grid, procs).unwrap();
        for rank in 0..procs {
            let mut access = fabric.take_export(k, rank, 0);
            let owned = decomp.owned(rank);
            threads.push(std::thread::spawn(move || {
                for i in 0..TOPO_EXPORTS {
                    let t = 1.6 + i as f64;
                    let data = LocalArray::from_fn(owned, |_, _| t);
                    access.export(ts(t), &data).unwrap();
                }
            }));
        }
    }
    let mut imp_threads = Vec::new();
    for (j, &(procs, .., count)) in c.importers.iter().enumerate() {
        let decomp = Decomposition::row_block(grid, procs).unwrap();
        for rank in 0..procs {
            let mut access = fabric.take_import(n_exp + j, rank, 0);
            let owned = decomp.owned(rank);
            imp_threads.push((
                j,
                std::thread::spawn(move || {
                    (0..count)
                        .map(|i| {
                            let mut dest = LocalArray::zeros(owned);
                            let m = access.import(ts(20.0 * (i + 1) as f64), &mut dest).unwrap();
                            if let Some(m) = m {
                                // The received data is the exported object
                                // at the matched timestamp.
                                assert_eq!(dest.get(owned.row0, 0), m.value());
                            }
                            m
                        })
                        .collect::<Vec<_>>()
                }),
            ));
        }
    }
    for t in threads {
        t.join().unwrap();
    }
    let mut per_conn: Vec<Option<Vec<Option<Timestamp>>>> = vec![None; c.importers.len()];
    for (conn, t) in imp_threads {
        let ms = t.join().unwrap();
        match &per_conn[conn] {
            None => per_conn[conn] = Some(ms),
            // Collective consistency: every rank sees the same answers.
            Some(prev) => assert_eq!(prev, &ms, "ranks disagree on connection {conn}"),
        }
    }
    fabric.shutdown().unwrap();
    per_conn.into_iter().map(|m| m.unwrap()).collect()
}

proptest! {
    // 12 cases keep the default run fast; `SIMTEST_CASES=200 cargo test`
    // opts in to a deeper sweep (nightly CI, bug hunts).
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("SIMTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(12)
    ))]

    /// For random topologies, the engine on real threads and the engine on
    /// the DES deliver identical matched timestamps on every connection:
    /// the collective answer depends only on the export series and the
    /// policy, never on request arrival timing.
    #[test]
    fn random_topologies_match_identically_on_both_runtimes(c in topo_case()) {
        let des = des_matches(&c);
        let threaded = threaded_matches(&c);
        prop_assert_eq!(des, threaded);
    }
}
