//! Property tests of the file-backed write-ahead journal: random record
//! sequences survive append + sync + reopen bit-exactly (across segment
//! rotation), a torn tail at *any* byte inside the final frame is
//! truncated exactly once and never costs an earlier record, any bit flip
//! in a record body is a typed [`WalError::Corrupt`] (never a silent
//! skip), and recovery is idempotent — a process that dies again
//! mid-replay reopens to the identical record sequence.

use couplink_metrics::EngineMetrics;
use couplink_proto::wire::HEADER_LEN;
use couplink_proto::{ConnectionId, CtrlMsg, RequestId};
use couplink_runtime::engine::reliable::{Wal, WalRecord, WireMeta};
use couplink_runtime::engine::Endpoint;
use couplink_runtime::net::wal::{encode_record, FileWal, WalError};
use couplink_time::ts;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Fresh scratch directory per sampled case; pid + counter keeps parallel
/// test binaries and repeated cases from colliding.
fn tmpdir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "couplink-propwal-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir
}

/// Both record kinds with randomized fields: delivered control messages
/// (sequenced, optionally FIFO-ordered) and application export marks.
fn wal_record() -> impl Strategy<Value = WalRecord> {
    (
        any::<bool>(),
        0usize..4,
        0usize..8,
        0u64..1_000_000,
        any::<bool>(),
        0u32..64,
        0.0f64..1e6,
        any::<bool>(),
    )
        .prop_map(|(deliver, prog, rank, seq, has_ord, small, t, alt)| {
            if deliver {
                WalRecord::Delivered {
                    ep: Endpoint::Rep { prog },
                    meta: WireMeta {
                        from: Endpoint::Proc { prog, rank },
                        seq,
                        ord: has_ord.then_some(seq),
                    },
                    msg: if alt {
                        CtrlMsg::ImportRequest {
                            conn: ConnectionId(small),
                            req: RequestId(seq),
                            ts: ts(t),
                        }
                    } else {
                        CtrlMsg::Ack { seq }
                    },
                }
            } else {
                WalRecord::AppExport {
                    ep: Endpoint::Proc { prog, rank },
                    region: small,
                    ts: ts(t),
                }
            }
        })
}

/// Appends `records` to a fresh journal `<dir>/n0.*.wal` and returns the
/// encoded frame length of each record (for computing damage offsets).
fn write_journal(dir: &Path, records: &[WalRecord], seg_limit: u64) -> Vec<usize> {
    let m = Arc::new(EngineMetrics::new());
    let (mut w, replayed) = FileWal::open(dir, "n0", seg_limit, m).expect("fresh open");
    assert!(replayed.is_empty());
    for rec in records {
        w.append(rec);
    }
    w.sync();
    records.iter().map(|r| encode_record(r).len()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Append + sync + reopen replays every record in file order with the
    /// metering to match — at every rotation granularity from
    /// one-record-per-segment to a single segment.
    #[test]
    fn journal_roundtrips_across_rotation(
        records in proptest::collection::vec(wal_record(), 1..16),
        limit_pick in 0usize..3,
    ) {
        let dir = tmpdir("roundtrip");
        let seg_limit = [1, 64, FileWal::SEGMENT_BYTES][limit_pick];
        write_journal(&dir, &records, seg_limit);

        let m = Arc::new(EngineMetrics::new());
        let (w, replayed) = FileWal::open(&dir, "n0", seg_limit, m.clone()).expect("reopen");
        prop_assert_eq!(&replayed, &records);
        prop_assert_eq!(m.wal_replayed.get(), records.len() as u64);
        prop_assert_eq!(m.wal_truncated.get(), 0);

        // The delivered mirror holds exactly the Delivered records, so
        // in-process failover replay agrees with disk replay.
        let mut mirrored = 0;
        for rec in &records {
            if let WalRecord::Delivered { ep, .. } = rec {
                mirrored += 1;
                prop_assert!(!w.delivered(*ep).is_empty());
            }
        }
        let total: usize = [0, 1, 2, 3]
            .into_iter()
            .map(|p| w.delivered(Endpoint::Rep { prog: p }).len())
            .sum();
        prop_assert_eq!(total, mirrored);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A crash mid-append leaves a strict prefix of the final frame. At
    /// every possible cut point: open succeeds, exactly the complete
    /// records replay, the tear is metered once — and a second crash
    /// *during recovery* changes nothing (reopen is idempotent, with no
    /// further truncation).
    #[test]
    fn torn_tail_truncates_once_at_any_cut(
        records in proptest::collection::vec(wal_record(), 2..10),
        cut_seed in any::<u64>(),
    ) {
        let dir = tmpdir("torn");
        let lens = write_journal(&dir, &records, FileWal::SEGMENT_BYTES);
        let total: usize = lens.iter().sum();
        let last = *lens.last().unwrap();
        // Keep at least 1 byte of the final frame, at most all-but-one.
        let cut = 1 + (cut_seed % (last as u64 - 1)) as usize;
        let path = dir.join("n0.0.wal");
        let bytes = std::fs::read(&path).expect("read journal");
        prop_assert_eq!(bytes.len(), total);
        std::fs::write(&path, &bytes[..total - cut]).expect("tear tail");

        let m = Arc::new(EngineMetrics::new());
        let (_, replayed) = FileWal::open(&dir, "n0", FileWal::SEGMENT_BYTES, m.clone())
            .expect("torn tail is recoverable");
        prop_assert_eq!(&replayed, &records[..records.len() - 1]);
        prop_assert_eq!(m.wal_truncated.get(), 1);

        // Die-again-mid-replay equivalence: the truncation already
        // happened, so a fresh open sees a clean journal.
        let m2 = Arc::new(EngineMetrics::new());
        let (_, again) = FileWal::open(&dir, "n0", FileWal::SEGMENT_BYTES, m2.clone())
            .expect("second recovery");
        prop_assert_eq!(&again, &replayed);
        prop_assert_eq!(m2.wal_truncated.get(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flipping any body byte of any record — including the final one —
    /// is a checksum mismatch and therefore [`WalError::Corrupt`], never
    /// a silently skipped or truncated record.
    #[test]
    fn bit_flip_anywhere_is_typed_corruption(
        records in proptest::collection::vec(wal_record(), 1..8),
        idx_seed in any::<u64>(),
        off_seed in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let dir = tmpdir("flip");
        let lens = write_journal(&dir, &records, FileWal::SEGMENT_BYTES);
        let idx = (idx_seed % records.len() as u64) as usize;
        let start: usize = lens[..idx].iter().sum();
        let body_len = lens[idx] - HEADER_LEN;
        let off = start + HEADER_LEN + (off_seed % body_len as u64) as usize;

        let path = dir.join("n0.0.wal");
        let mut bytes = std::fs::read(&path).expect("read journal");
        bytes[off] ^= xor;
        std::fs::write(&path, &bytes).expect("flip byte");

        let m = Arc::new(EngineMetrics::new());
        let err = FileWal::open(&dir, "n0", FileWal::SEGMENT_BYTES, m)
            .expect_err("flipped body must be refused");
        prop_assert!(matches!(err, WalError::Corrupt { .. }), "{}", err);
        prop_assert!(
            err.to_string().contains("corrupt WAL record"),
            "operator-facing message names the corruption: {}",
            err
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A missing journal and a zero-byte segment file are both simply fresh —
/// no records, no truncation, no error.
#[test]
fn empty_and_missing_journals_are_fresh() {
    let dir = tmpdir("fresh");
    let m = Arc::new(EngineMetrics::new());
    let (_, replayed) = FileWal::open(
        &dir.join("never-written"),
        "n0",
        FileWal::SEGMENT_BYTES,
        m.clone(),
    )
    .expect("missing dir is fresh");
    assert!(replayed.is_empty());

    std::fs::write(dir.join("n0.0.wal"), b"").expect("zero-byte segment");
    let (_, replayed) =
        FileWal::open(&dir, "n0", FileWal::SEGMENT_BYTES, m.clone()).expect("empty file is fresh");
    assert!(replayed.is_empty());
    assert_eq!(m.wal_truncated.get(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Foreign files in the journal directory — other nodes' journals, editor
/// droppings, non-numeric suffixes — are ignored by segment discovery.
#[test]
fn segment_discovery_ignores_foreign_files() {
    let dir = tmpdir("foreign");
    let rec = WalRecord::Delivered {
        ep: Endpoint::Rep { prog: 1 },
        meta: WireMeta {
            from: Endpoint::Rep { prog: 0 },
            seq: 1,
            ord: None,
        },
        msg: CtrlMsg::Ack { seq: 1 },
    };
    write_journal(&dir, std::slice::from_ref(&rec), FileWal::SEGMENT_BYTES);
    std::fs::write(dir.join("n1.0.wal"), b"another node's journal").expect("write");
    std::fs::write(dir.join("n0.x.wal"), b"non-numeric segment index").expect("write");
    std::fs::write(dir.join("n0.0.wal.bak"), b"editor dropping").expect("write");

    let m = Arc::new(EngineMetrics::new());
    let (_, replayed) = FileWal::open(&dir, "n0", FileWal::SEGMENT_BYTES, m).expect("open");
    assert_eq!(replayed, vec![rec]);
    let _ = std::fs::remove_dir_all(&dir);
}
