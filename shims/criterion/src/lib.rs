//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the workspace's benches use. Measurement is
//! deliberately simple — each benchmark body runs under a short fixed time
//! budget and the mean iteration time is printed — enough to compare runs by
//! hand and to keep `cargo bench` compiling and running without registry
//! access. No statistics, plots or baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration batching hints; accepted and ignored.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input per iteration.
    PerIteration,
}

/// Throughput annotation; printed alongside the timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier from a name and a parameter.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs benchmark closures and reports a mean iteration time.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
}

/// Wall-clock budget each benchmark body is measured under.
const BUDGET: Duration = Duration::from_millis(200);

impl Bencher {
    /// Times `f` repeatedly until the budget elapses.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < BUDGET {
            black_box(f());
            iters += 1;
        }
        self.record(start.elapsed(), iters);
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < BUDGET {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            measured += t0.elapsed();
            iters += 1;
        }
        self.record(measured, iters);
    }

    fn record(&mut self, elapsed: Duration, iters: u64) {
        self.iters = iters.max(1);
        self.mean_ns = elapsed.as_nanos() as f64 / self.iters as f64;
    }
}

/// A named group of benchmarks (`Criterion::benchmark_group`).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted and ignored (the shim uses a time budget, not a count).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let gib = n as f64 / b.mean_ns * 1e9 / (1u64 << 30) as f64;
                format!("  {gib:.2} GiB/s")
            }
            Some(Throughput::Elements(n)) => {
                let meps = n as f64 / b.mean_ns * 1e9 / 1e6;
                format!("  {meps:.2} Melem/s")
            }
            None => String::new(),
        };
        println!(
            "{}/{}: {:.1} ns/iter ({} iters){}",
            self.name, id, b.mean_ns, b.iters, rate
        );
    }
}

/// Entry point handed to benchmark functions by `criterion_group!`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility; there are no CLI args to apply.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
