//! Value-generation strategies: the sampling core of the proptest shim.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::rc::Rc;

/// A source of random values of an associated type.
///
/// Unlike real proptest there is no value tree / shrinking: `sample` draws
/// one concrete value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe sampling, used by [`BoxedStrategy`].
trait DynStrategy<V> {
    fn sample_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy (`Strategy::boxed`).
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample_dyn(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice among type-erased alternatives (`prop_oneof!`).
pub struct OneOf<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Builds from a non-empty set of alternatives.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary_sample(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for an [`Arbitrary`] type.
pub struct Any<T>(PhantomData<T>);

/// Strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_sample(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_sample(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary_sample(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary_sample(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(hi > lo, "empty range strategy {}..{}", self.start, self.end);
                let span = (hi - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(hi >= lo, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )+};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.end > self.start, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )+};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let v = (3usize..7).sample(&mut rng);
            assert!((3..7).contains(&v));
            let w = (1usize..=4).sample(&mut rng);
            assert!((1..=4).contains(&w));
            let f = (0.5f64..2.0).sample(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let big = (0u64..u64::MAX).sample(&mut rng);
            assert!(big < u64::MAX);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let draw = || {
            let mut rng = TestRng::for_test("determinism");
            (0..32)
                .map(|_| (0u64..1000).sample(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = crate::prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = TestRng::for_test("oneof");
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(s.sample(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn flat_map_threads_outer_value() {
        let s = (1usize..5).prop_flat_map(|n| (Just(n), 0usize..n));
        let mut rng = TestRng::for_test("flat_map");
        for _ in 0..200 {
            let (n, k) = s.sample(&mut rng);
            assert!(k < n);
        }
    }

    #[test]
    fn collection_vec_respects_size() {
        let s = crate::collection::vec(0u8..10, 2..5);
        let mut rng = TestRng::for_test("vec");
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }
}
