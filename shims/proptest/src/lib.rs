//! Offline stand-in for `proptest`.
//!
//! The build environment has no crate-registry access, so the workspace
//! points `proptest` at this shim. It implements the subset of the proptest
//! API the workspace's property tests use — `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_oneof!`, `Just`, `any`, range/tuple strategies,
//! `prop_map`/`prop_flat_map`, and `proptest::collection::vec` — with a
//! deterministic per-test RNG (seeded from the test name), so failures are
//! reproducible. Unlike real proptest there is no shrinking: a failing case
//! reports its inputs verbatim.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Number-of-elements range for [`vec`]; end-exclusive.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: vectors with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi.saturating_sub(self.size.lo).max(1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The conventional `use proptest::prelude::*` import set.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with its sampled inputs echoed) rather than panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            a, b, stringify!($a), stringify!($b)
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` != `{:?}`: {}",
                    a, b, format!($($fmt)*)
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            a,
            b,
            stringify!($a),
            stringify!($b)
        );
    }};
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written by the caller, as in real
/// proptest) that samples and checks `cases` inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            let run_case = |seed: u64, label: &str| {
                let mut rng = $crate::test_runner::TestRng::from_seed(seed);
                let values = ( $($crate::strategy::Strategy::sample(&$strat, &mut rng)),+ ,);
                let rendered = format!("{:?}", values);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        let ( $($pat),+ ,) = values;
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed: {}\n  inputs: {}\n  \
                         persist in proptest-regressions/ as: cc {} {}",
                        label, e, rendered, test_name, seed
                    );
                }
            };
            // Persisted historical failures replay before fresh sampling.
            for (line, seed) in $crate::test_runner::persisted_seeds(
                env!("CARGO_MANIFEST_DIR"), file!(), test_name
            ) {
                run_case(seed, &format!("regression (file line {line})"));
            }
            let mut rng = $crate::test_runner::TestRng::for_test(test_name);
            for case in 0..cfg.cases {
                let seed = rng.state();
                run_case(seed, &format!("case {}/{}", case + 1, cfg.cases));
                // Advance past this case's draws by replaying the sampling.
                $(let _ = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
