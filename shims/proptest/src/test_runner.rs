//! Test-execution support: configuration, case errors and the deterministic
//! RNG behind the proptest shim.

use std::fmt;

/// How many cases each property runs (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (produced by `prop_assert!`-family macros).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic splitmix64 RNG, seeded from the test's module path and
/// name so every run of a given test replays the same cases.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// RNG for the named test (FNV-1a of the name as seed).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}
