//! Test-execution support: configuration, case errors and the deterministic
//! RNG behind the proptest shim.

use std::fmt;

/// How many cases each property runs (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (produced by `prop_assert!`-family macros).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic splitmix64 RNG, seeded from the test's module path and
/// name so every run of a given test replays the same cases.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// RNG for the named test (FNV-1a of the name as seed).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    /// RNG starting from an explicit state — used to replay persisted
    /// regression seeds (see [`persisted_seeds`]).
    pub fn from_seed(seed: u64) -> Self {
        TestRng(seed)
    }

    /// The current state. Captured at the start of a case, it is the seed
    /// that replays exactly that case via [`TestRng::from_seed`].
    pub fn state(&self) -> u64 {
        self.0
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Persisted regression seeds for one property test.
///
/// Mirrors real proptest's `proptest-regressions/` convention: next to the
/// test's source file lives `proptest-regressions/<file_stem>.txt` with one
/// line per persisted case, `cc <test_name> <seed>` (blank lines and `#`
/// comments ignored). The seed is the RNG *state* at the start of the
/// failing case — exactly what a failure report prints — so each entry
/// replays one historical failure before fresh sampling begins. Returns
/// `(line_number, seed)` pairs for entries naming `test_name`; a missing
/// file is simply no regressions.
///
/// `source_file` is the test's `file!()` (workspace-root-relative);
/// `manifest_dir` is the test crate's `CARGO_MANIFEST_DIR`, used to anchor
/// the relative path at runtime.
pub fn persisted_seeds(
    manifest_dir: &str,
    source_file: &str,
    test_name: &str,
) -> Vec<(usize, u64)> {
    let path = regression_path(manifest_dir, source_file);
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next() != Some("cc") {
            continue;
        }
        let (Some(name), Some(seed)) = (parts.next(), parts.next()) else {
            continue;
        };
        if name != test_name {
            continue;
        }
        match seed.parse::<u64>() {
            Ok(s) => seeds.push((idx + 1, s)),
            Err(_) => panic!(
                "{}:{}: malformed regression seed {seed:?}",
                path.display(),
                idx + 1
            ),
        }
    }
    seeds
}

/// `proptest-regressions/<stem>.txt` next to the source file, anchored at
/// the crate's manifest directory (since `file!()` is workspace-relative
/// but tests run with the crate as working directory).
fn regression_path(manifest_dir: &str, source_file: &str) -> std::path::PathBuf {
    let src = std::path::Path::new(source_file);
    let manifest = std::path::Path::new(manifest_dir);
    // Drop the leading `file!()` components that name the crate directory
    // itself (e.g. `crates/runtime/tests/x.rs` → `tests/x.rs`).
    let mut rel = src;
    for ancestor in src.ancestors().skip(1) {
        if !ancestor.as_os_str().is_empty() && manifest.ends_with(ancestor) {
            rel = src.strip_prefix(ancestor).expect("ancestor is a prefix");
            break;
        }
    }
    let dir = manifest.join(rel.parent().unwrap_or(std::path::Path::new("")));
    let stem = src.file_stem().unwrap_or_default();
    dir.join("proptest-regressions")
        .join(stem)
        .with_extension("txt")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_path_is_anchored_at_the_manifest() {
        assert_eq!(
            regression_path("/ws/crates/runtime", "crates/runtime/tests/prop_des.rs"),
            std::path::PathBuf::from("/ws/crates/runtime/tests/proptest-regressions/prop_des.txt")
        );
        assert_eq!(
            regression_path("/ws/crates/layout", "crates/layout/src/lib.rs"),
            std::path::PathBuf::from("/ws/crates/layout/src/proptest-regressions/lib.txt")
        );
    }

    #[test]
    fn state_round_trips_through_from_seed() {
        let mut a = TestRng::for_test("some::test");
        a.next_u64();
        let mut b = TestRng::from_seed(a.state());
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
