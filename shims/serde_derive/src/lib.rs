//! No-op derive macros for the offline `serde` shim: the derives accept the
//! item (including `#[serde(...)]` attributes) and emit no impls, which is
//! valid because nothing in the workspace requires the trait bounds.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
