//! Offline stand-in for `parking_lot`.
//!
//! Provides the `Mutex`/`Condvar` subset the workspace uses with
//! parking_lot's signatures (`lock()` without poisoning, `Condvar::wait*`
//! taking `&mut MutexGuard`), implemented over `std::sync`. Poisoned locks
//! propagate the panic, matching parking_lot's behavior of not poisoning.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// A mutual-exclusion lock with parking_lot's non-poisoning `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
///
/// Wraps the std guard in an `Option` so the condvar methods can take the
/// guard out, block on the std condvar (which consumes/returns guards by
/// value), and put it back — preserving parking_lot's `&mut guard` API.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, ignoring poisoning (parking_lot never poisons).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking; `None` if it is
    /// currently held (parking_lot returns an `Option`, not a `Result`).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<'a, T> MutexGuard<'a, T> {
    fn take(&mut self) -> sync::MutexGuard<'a, T> {
        self.inner.take().expect("guard vacated only while waiting")
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with parking_lot's `&mut MutexGuard` API.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.take();
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Blocks until notified or `timeout` (an absolute instant) passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Instant,
    ) -> WaitTimeoutResult {
        let dur = timeout.saturating_duration_since(Instant::now());
        self.wait_for(guard, dur)
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.take();
        let (g, result) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn notify_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let t = thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                let r = cv2.wait_until(&mut g, Instant::now() + Duration::from_secs(5));
                assert!(!r.timed_out());
            }
        });
        thread::sleep(Duration::from_millis(20));
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
