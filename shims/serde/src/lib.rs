//! Offline stand-in for `serde`.
//!
//! The build environment has no access to a crate registry, so the workspace
//! points `serde` at this local shim. The codebase only uses
//! `#[derive(Serialize, Deserialize)]` as forward-looking annotations — no
//! serializer is ever instantiated — so marker traits plus no-op derive
//! macros are sufficient. Swapping back to real serde is a one-line change
//! in the workspace `Cargo.toml`.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
