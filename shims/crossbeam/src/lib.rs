//! Offline stand-in for `crossbeam`.
//!
//! Only the subset of `crossbeam::channel` the workspace uses is provided,
//! implemented over `std::sync::mpsc`. The workspace's channels are all
//! multi-producer single-consumer, which `mpsc` models exactly.

pub mod channel {
    //! `crossbeam::channel` subset over `std::sync::mpsc`.

    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}
