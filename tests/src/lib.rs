//! Test-only package: the actual tests live in `tests/tests/`.
