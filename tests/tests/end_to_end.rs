//! End-to-end integration across the whole stack: the public `couplink`
//! session API over the threaded runtime, cross-checked against the
//! deterministic discrete-event runtime.

use couplink::prelude::*;
use couplink_runtime::{CostModel, CoupledConfig, CoupledSim};
use std::sync::mpsc;

fn session_for(
    policy: &str,
    tolerance: f64,
    buddy: bool,
) -> (Session, Decomposition, Decomposition) {
    let config = couplink::config::parse(&format!(
        "F c0 /bin/f 4\nU c0 /bin/u 2\n#\nF.r U.r {policy} {tolerance}\n"
    ))
    .expect("valid config");
    let grid = Extent2::new(32, 32);
    let f = Decomposition::block_2d(grid, 2, 2).unwrap();
    let u = Decomposition::row_block(grid, 2).unwrap();
    let session = SessionBuilder::new(config)
        .bind("F", "r", f)
        .bind("U", "r", u)
        .buddy_help(buddy)
        .build()
        .unwrap();
    (session, f, u)
}

/// Drives a full exporter/importer run through the public API and returns
/// each matched timestamp with the checksum of the received data.
fn run_threaded(
    policy: &str,
    tolerance: f64,
    buddy: bool,
    import_times: &[f64],
) -> Vec<(Option<f64>, f64)> {
    let (mut session, f_d, u_d) = session_for(policy, tolerance, buddy);
    let mut f = session.take_program("F").unwrap();
    let mut u = session.take_program("U").unwrap();
    let mut threads = Vec::new();
    for rank in 0..4 {
        let mut proc = f.take_process(rank);
        let owned = f_d.owned(rank);
        threads.push(std::thread::spawn(move || {
            let region = proc.export_region("r").unwrap();
            for i in 0..80 {
                let t = 1.6 + i as f64;
                let data = LocalArray::from_fn(owned, |r, c| t * 31.0 + (r * 32 + c) as f64);
                region.export(ts(t), &data).unwrap();
            }
        }));
    }
    let (tx, rx) = mpsc::channel();
    for rank in 0..2 {
        let mut proc = u.take_process(rank);
        let owned = u_d.owned(rank);
        let tx = tx.clone();
        let imports = import_times.to_vec();
        threads.push(std::thread::spawn(move || {
            let region = proc.import_region("r").unwrap();
            for (j, want) in imports.iter().enumerate() {
                let mut dest = LocalArray::zeros(owned);
                let m = region.import(ts(*want), &mut dest).unwrap();
                tx.send((j, rank, m.map(|t| t.value()), dest.sum()))
                    .unwrap();
            }
        }));
    }
    drop(tx);
    let mut results = vec![(None, 0.0); import_times.len()];
    let mut seen = vec![0usize; import_times.len()];
    while let Ok((j, _rank, m, sum)) = rx.recv() {
        results[j].0 = m;
        results[j].1 += sum;
        seen[j] += 1;
    }
    for t in threads {
        t.join().unwrap();
    }
    session.shutdown().unwrap();
    assert!(seen.iter().all(|&s| s == 2), "every rank answered");
    results
}

#[test]
fn buddy_help_changes_nothing_observable() {
    let imports = [20.0, 40.0, 60.0];
    let with = run_threaded("REGL", 2.5, true, &imports);
    let without = run_threaded("REGL", 2.5, false, &imports);
    assert_eq!(with, without);
    assert_eq!(with[0].0, Some(19.6));
    assert_eq!(with[1].0, Some(39.6));
    assert_eq!(with[2].0, Some(59.6));
}

#[test]
fn all_three_policies_match_as_specified() {
    // Exports at 1.6, 2.6, ...; request 20.0.
    let regl = run_threaded("REGL", 2.5, true, &[20.0]);
    assert_eq!(regl[0].0, Some(19.6)); // closest at-or-below
    let regu = run_threaded("REGU", 2.5, true, &[20.0]);
    assert_eq!(regu[0].0, Some(20.6)); // first at-or-above
    let reg = run_threaded("REG", 2.5, true, &[20.0]);
    assert_eq!(reg[0].0, Some(19.6)); // 19.6 is closer than 20.6
}

#[test]
fn tight_tolerance_yields_no_match() {
    // Exports land at x.6 only; a request at 20.0 with tolerance 0.25 has an
    // empty acceptable region.
    let result = run_threaded("REG", 0.25, true, &[20.0]);
    assert_eq!(result[0].0, None);
    assert_eq!(result[0].1, 0.0, "dest untouched on NO MATCH");
}

#[test]
fn received_data_is_the_matched_version() {
    let results = run_threaded("REGL", 2.5, true, &[40.0]);
    let m = results[0].0.unwrap();
    // Checksum over the whole 32x32 grid of `t*31 + linear_index`.
    let expect: f64 = (0..32 * 32).map(|i| m * 31.0 + i as f64).sum();
    assert!((results[0].1 - expect).abs() < 1e-6);
}

/// The DES and the threaded runtime must agree on *what* is transferred
/// (virtual timing differs, semantics must not).
#[test]
fn des_and_threaded_agree_on_transfers() {
    let grid = Extent2::new(32, 32);
    let cfg = CoupledConfig {
        exporter_decomp: Decomposition::block_2d(grid, 2, 2).unwrap(),
        importer_decomp: Decomposition::row_block(grid, 2).unwrap(),
        policy: MatchPolicy::RegL,
        tolerance: 2.5,
        buddy_help: true,
        exports: 80,
        export_t0: 1.6,
        export_dt: 1.0,
        imports: 3,
        import_t0: 20.0,
        import_dt: 20.0,
        exporter_compute: vec![1e-5, 1e-5, 1e-5, 1e-4],
        importer_compute: 1e-4,
        importer_startup: 0.0,
        cost: CostModel::default(),
        buffer_capacity: None,
    };
    let report = CoupledSim::new(cfg).unwrap().run().unwrap();
    let threaded = run_threaded("REGL", 2.5, true, &[20.0, 40.0, 60.0]);
    // Same three matches on both runtimes.
    assert_eq!(report.importer_done, vec![3, 3]);
    for stats in &report.stats {
        assert_eq!(stats.sends, 3);
    }
    assert_eq!(
        threaded.iter().map(|(m, _)| *m).collect::<Vec<_>>(),
        vec![Some(19.6), Some(39.6), Some(59.6)]
    );
}

/// The diffusion solver coupled through the framework converges to the same
/// field whether or not buddy-help is enabled.
#[test]
fn coupled_solver_is_bitwise_independent_of_buddy_help() {
    use couplink_diffusion::{fill_forcing, Leapfrog};
    let run = |buddy: bool| -> Vec<f64> {
        let (mut session, f_d, u_d) = session_for("REGL", 2.5, buddy);
        let grid = Extent2::new(32, 32);
        let mut f = session.take_program("F").unwrap();
        let mut u = session.take_program("U").unwrap();
        let mut threads = Vec::new();
        for rank in 0..4 {
            let mut proc = f.take_process(rank);
            let owned = f_d.owned(rank);
            threads.push(std::thread::spawn(move || {
                let region = proc.export_region("r").unwrap();
                for i in 0..70 {
                    let t = 1.6 + i as f64;
                    let data = fill_forcing(grid, owned, t);
                    region.export(ts(t), &data).unwrap();
                }
            }));
        }
        let (tx, rx) = mpsc::channel();
        for rank in 0..2 {
            let mut proc = u.take_process(rank);
            let owned = u_d.owned(rank);
            let tx = tx.clone();
            threads.push(std::thread::spawn(move || {
                let region = proc.import_region("r").unwrap();
                let dx = 1.0 / 33.0;
                let mut solver = Leapfrog::new(grid, owned, dx, dx / 2.0);
                let mut forcing = LocalArray::zeros(owned);
                for j in 1..=3 {
                    region
                        .import(ts(20.0 * j as f64), &mut forcing)
                        .unwrap()
                        .unwrap();
                    // Halo-free sub-stepping: treat the block boundary rows
                    // as fixed zero (sufficient for a determinism check).
                    for _ in 0..5 {
                        solver.step(&forcing);
                    }
                }
                tx.send((rank, solver.snapshot().as_slice().to_vec()))
                    .unwrap();
            }));
        }
        drop(tx);
        let mut fields = [Vec::new(), Vec::new()];
        while let Ok((rank, field)) = rx.recv() {
            fields[rank] = field;
        }
        for t in threads {
            t.join().unwrap();
        }
        session.shutdown().unwrap();
        fields.concat()
    };
    let a = run(true);
    let b = run(false);
    assert_eq!(a, b);
    assert!(a.iter().any(|v| *v != 0.0), "forcing actually acted");
}
