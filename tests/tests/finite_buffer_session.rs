//! Finite framework buffers through the public session API: exports block
//! on a full buffer and resume when the importer's requests free space,
//! without changing what is transferred.

use couplink::prelude::*;
use std::time::Duration;

fn run(buffer_capacity: Option<usize>) -> (Vec<Option<f64>>, Vec<couplink_proto::ExportStats>) {
    let config = couplink::config::parse("F c0 /bin/f 2\nU c0 /bin/u 2\n#\nF.r U.r REGL 2.5\n")
        .expect("valid config");
    let grid = Extent2::new(16, 16);
    let d2 = Decomposition::row_block(grid, 2).unwrap();
    let mut builder = SessionBuilder::new(config)
        .bind("F", "r", d2)
        .bind("U", "r", d2)
        .import_timeout(Duration::from_secs(20));
    if let Some(cap) = buffer_capacity {
        builder = builder.buffer_capacity(cap);
    }
    let mut session = builder.build().unwrap();
    let mut f = session.take_program("F").unwrap();
    let mut u = session.take_program("U").unwrap();

    let mut threads = Vec::new();
    for rank in 0..2 {
        let mut proc = f.take_process(rank);
        let owned = d2.owned(rank);
        threads.push(std::thread::spawn(move || {
            let region = proc.export_region("r").unwrap();
            // 42 exports end at 42.6: after the final match (39.6) the tail
            // 39.6..42.6 holds 4 objects, within the capacity-6 bound (a
            // longer tail would legitimately fill the buffer for good —
            // there is no later request to prune it).
            for i in 0..42 {
                let t = 1.6 + i as f64;
                let data = LocalArray::from_fn(owned, |_, _| t);
                region.export(ts(t), &data).unwrap();
            }
        }));
    }
    let mut results = Vec::new();
    let mut imp_threads = Vec::new();
    for rank in 0..2 {
        let mut proc = u.take_process(rank);
        let owned = d2.owned(rank);
        imp_threads.push(std::thread::spawn(move || {
            let region = proc.import_region("r").unwrap();
            let mut got = Vec::new();
            for j in 1..=2 {
                // Slow importer: the exporter hits its buffer bound first.
                std::thread::sleep(Duration::from_millis(60));
                let mut dest = LocalArray::zeros(owned);
                let m = region.import(ts(20.0 * j as f64), &mut dest).unwrap();
                got.push(m.map(|t| t.value()));
            }
            got
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    for t in imp_threads {
        results = t.join().unwrap();
    }
    let stats = session.shutdown().unwrap().remove(0);
    (results, stats)
}

#[test]
fn bounded_session_transfers_identically_but_stalls() {
    let (unbounded_results, unbounded_stats) = run(None);
    let (bounded_results, bounded_stats) = run(Some(6));
    // Same matches either way.
    assert_eq!(unbounded_results, bounded_results);
    assert_eq!(bounded_results, vec![Some(19.6), Some(39.6)]);
    // The bound was respected and actually bit.
    for s in &bounded_stats {
        assert!(s.buffered_hwm <= 6, "{s:?}");
        assert!(s.buffer_full_stalls > 0, "{s:?}");
    }
    for s in &unbounded_stats {
        assert_eq!(s.buffer_full_stalls, 0);
        assert!(s.buffered_hwm > 6, "{s:?}");
    }
}
