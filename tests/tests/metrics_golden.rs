//! Golden-snapshot and determinism tests for the metrics layer.
//!
//! The Figure-5 event stream, rendered with running metric annotations, is
//! pinned against `tests/golden/fig5_trace.txt`. A diff points at the exact
//! event where a buffering decision regressed. Regenerate after an
//! intentional protocol change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p couplink-integration --test metrics_golden
//! ```

use couplink_bench::figure5_trace;
use couplink_diffusion::fig4::{fig4_config, Fig4Params};
use couplink_runtime::{CoupledReport, CoupledSim};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join(name)
}

#[test]
fn figure5_annotated_trace_matches_golden() {
    let rendered = figure5_trace().render_annotated();
    let path = golden_path("fig5_trace.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun with UPDATE_GOLDEN=1 to create",
            path.display()
        )
    });
    if rendered != golden {
        // Line-level diff so the failing event is obvious.
        let mut diff = String::new();
        for (i, (got, want)) in rendered.lines().zip(golden.lines()).enumerate() {
            if got != want {
                diff.push_str(&format!(
                    "line {}:\n  golden : {want}\n  current: {got}\n",
                    i + 1
                ));
            }
        }
        panic!(
            "Figure-5 annotated trace drifted from {} \
             ({} rendered lines vs {} golden):\n{diff}\
             If the change is intentional, regenerate with UPDATE_GOLDEN=1.",
            path.display(),
            rendered.lines().count(),
            golden.lines().count(),
        );
    }
}

fn run_fig4_smoke() -> CoupledReport {
    let cfg = fig4_config(Fig4Params {
        u_procs: 16,
        buddy_help: true,
        exports: 101,
    });
    CoupledSim::new(cfg)
        .expect("valid config")
        .run()
        .expect("runs")
}

/// Two identical DES runs must produce bit-identical counter snapshots and
/// virtual phase times — the property the bench regression gate relies on.
#[test]
fn des_metrics_are_deterministic_across_runs() {
    let a = run_fig4_smoke();
    let b = run_fig4_smoke();
    assert_eq!(
        a.metrics.counters, b.metrics.counters,
        "counter snapshots differ between identical DES runs"
    );
    assert_eq!(
        a.metrics.timing.virtual_s, b.metrics.timing.virtual_s,
        "virtual phase times differ between identical DES runs"
    );
    // Sanity on the snapshot itself: conservation and non-trivial content.
    let c = &a.metrics.counters;
    assert_eq!(c.memcpy_paid + c.memcpy_skipped, c.export_calls);
    assert!(c.export_calls > 0 && c.transfers > 0);
}

/// The counter snapshot round-trips through the hand-rolled JSON codec.
#[test]
fn counter_snapshot_roundtrips_through_json() {
    let report = run_fig4_smoke();
    let encoded = couplink_metrics::json::emit(&report.metrics.counters.to_json());
    let decoded = couplink_metrics::CounterSnapshot::from_json(
        &couplink_metrics::json::parse(&encoded).expect("parses"),
    )
    .expect("decodes");
    assert_eq!(decoded, report.metrics.counters);
}
