//! Failure injection: Property 1 violations must be detected, not silently
//! tolerated — through the protocol machines and through the public API.

use couplink::prelude::*;
use couplink_proto::{
    ExporterRep, ImporterRep, PortError, ProcResponse, Rank, RepAnswer, RepError, RequestId,
};
use couplink_runtime::threaded::ThreadedError;
use couplink_time::ts;
use std::time::Duration;

// --- protocol-machine level ---

#[test]
fn rep_rejects_match_no_match_mixture() {
    let mut rep = ExporterRep::new(3, true);
    rep.on_import_request(RequestId(0), ts(20.0)).unwrap();
    rep.on_response(Rank(0), RequestId(0), ProcResponse::Match(ts(19.6)))
        .unwrap();
    rep.on_response(
        Rank(1),
        RequestId(0),
        ProcResponse::Pending { latest: None },
    )
    .unwrap();
    let err = rep
        .on_response(Rank(2), RequestId(0), ProcResponse::NoMatch)
        .unwrap_err();
    assert!(matches!(err, RepError::CollectiveViolation { .. }));
}

#[test]
fn rep_rejects_conflicting_match_timestamps_even_after_completion() {
    let mut rep = ExporterRep::new(2, true);
    rep.on_import_request(RequestId(0), ts(20.0)).unwrap();
    rep.on_response(Rank(0), RequestId(0), ProcResponse::Match(ts(19.6)))
        .unwrap();
    let fx = rep
        .on_response(
            Rank(1),
            RequestId(0),
            ProcResponse::Pending { latest: None },
        )
        .unwrap();
    assert_eq!(fx.completed, Some(RequestId(0)));
    // A late, conflicting local resolution from rank 1 must still trip the
    // violation detector.
    let err = rep
        .on_response(Rank(1), RequestId(0), ProcResponse::Match(ts(18.6)))
        .unwrap_err();
    assert!(matches!(err, RepError::CollectiveViolation { .. }));
    // A late *consistent* one is fine.
    let mut rep = ExporterRep::new(2, true);
    rep.on_import_request(RequestId(0), ts(20.0)).unwrap();
    rep.on_response(Rank(0), RequestId(0), ProcResponse::Match(ts(19.6)))
        .unwrap();
    rep.on_response(
        Rank(1),
        RequestId(0),
        ProcResponse::Pending { latest: None },
    )
    .unwrap();
    rep.on_response(Rank(1), RequestId(0), ProcResponse::Match(ts(19.6)))
        .unwrap();
}

#[test]
fn importer_rep_rejects_diverging_collective_import_calls() {
    let mut rep = ImporterRep::new(2);
    rep.on_import_call(Rank(0), ts(20.0)).unwrap();
    let err = rep.on_import_call(Rank(1), ts(20.5)).unwrap_err();
    assert!(matches!(err, RepError::CollectiveViolation { .. }));
}

#[test]
fn port_rejects_buddy_help_contradicting_local_knowledge() {
    use couplink_proto::{ConnectionId, ExportPort};
    use couplink_time::{MatchPolicy, Tolerance};
    let mut port = ExportPort::new(
        ConnectionId(0),
        MatchPolicy::RegL,
        Tolerance::new(2.5).unwrap(),
    );
    for i in 1..=19 {
        port.on_export(ts(i as f64 + 0.6)).unwrap();
    }
    port.on_request(RequestId(0), ts(20.0)).unwrap();
    // The rep claims the match is 18.6, but this process has already
    // exported 19.6, which would be a strictly better REGL match — the
    // collective decision cannot be 18.6.
    let err = port
        .on_buddy_help(RequestId(0), RepAnswer::Match(ts(18.6)))
        .unwrap_err();
    assert!(
        matches!(err, PortError::CollectiveViolation { .. }),
        "{err:?}"
    );
}

// --- public-API level ---

#[test]
fn diverging_export_sequences_fail_the_session() {
    let config =
        couplink::config::parse("F c0 /bin/f 2\nU c0 /bin/u 1\n#\nF.r U.r REGL 1.0\n").unwrap();
    let grid = Extent2::new(8, 8);
    let f = Decomposition::row_block(grid, 2).unwrap();
    let u = Decomposition::row_block(grid, 1).unwrap();
    let mut session = SessionBuilder::new(config)
        .bind("F", "r", f)
        .bind("U", "r", u)
        .import_timeout(Duration::from_millis(500))
        .build()
        .unwrap();
    let mut fh = session.take_program("F").unwrap();
    let mut uh = session.take_program("U").unwrap();
    let mut p0 = fh.take_process(0);
    let mut p1 = fh.take_process(1);
    let d0 = LocalArray::zeros(f.owned(0));
    let d1 = LocalArray::zeros(f.owned(1));
    // Property 1 requires identical export sequences; these differ.
    p0.export_region("r").unwrap().export(ts(4.5), &d0).unwrap();
    p1.export_region("r").unwrap().export(ts(4.8), &d1).unwrap();
    let mut uproc = uh.take_process(0);
    let owned = u.owned(0);
    let importer = std::thread::spawn(move || {
        let mut dest = LocalArray::zeros(owned);
        let _ = uproc.import_region("r").unwrap().import(ts(5.0), &mut dest);
    });
    std::thread::sleep(Duration::from_millis(50));
    // Both processes move past the region, reaching conflicting matches. The
    // violation is detected asynchronously (rep aggregation or a buddy-help
    // contradicting local knowledge), so depending on scheduling it surfaces
    // at one of these export calls or at shutdown — any of them counts.
    let r0 = p0
        .export_region("r")
        .unwrap()
        .export(ts(6.0), &d0)
        .map(|_| ());
    let r1 = p1
        .export_region("r")
        .unwrap()
        .export(ts(6.5), &d1)
        .map(|_| ());
    importer.join().unwrap();
    drop(p0);
    drop(p1);
    let shutdown = session.shutdown().map(|_| ());
    let violated = [&r0, &r1, &shutdown].into_iter().any(|r| {
        matches!(
            r,
            Err(couplink::SessionError::Runtime(ThreadedError::RepFailed(_)))
        )
    });
    assert!(
        violated,
        "expected a detected collective violation, got {r0:?} / {r1:?} / {shutdown:?}"
    );
}

#[test]
fn non_increasing_exports_rejected_at_the_source() {
    let config =
        couplink::config::parse("F c0 /bin/f 1\nU c0 /bin/u 1\n#\nF.r U.r REGL 1.0\n").unwrap();
    let grid = Extent2::new(4, 4);
    let d = Decomposition::row_block(grid, 1).unwrap();
    let mut session = SessionBuilder::new(config)
        .bind("F", "r", d)
        .bind("U", "r", d)
        .build()
        .unwrap();
    let mut fh = session.take_program("F").unwrap();
    let mut p = fh.take_process(0);
    let data = LocalArray::zeros(d.owned(0));
    p.export_region("r")
        .unwrap()
        .export(ts(5.0), &data)
        .unwrap();
    let err = p
        .export_region("r")
        .unwrap()
        .export(ts(5.0), &data)
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(
        err,
        couplink::SessionError::Runtime(ThreadedError::Port(PortError::History(_)))
    ));
    drop(p);
    session.shutdown().unwrap();
}
