//! Property-based oracle testing of the exporter buffer manager.
//!
//! For random export schedules, request streams and buddy-help timings, the
//! port must (1) transfer exactly the objects a full-knowledge matcher says
//! are the matches, (2) never skip the memcpy of an object that turns out to
//! be a match, (3) behave observably identically with and without
//! buddy-help, and (4) never copy *more* with buddy-help than without.

use couplink_proto::{ConnectionId, ExportPort, RepAnswer, RequestId};
use couplink_time::{evaluate, ts, ExportHistory, MatchPolicy, MatchResult, Timestamp, Tolerance};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
struct Req {
    x: f64,
    /// Export index at which the forwarded request arrives.
    arrival: usize,
    /// Export indices after arrival at which buddy-help lands.
    help_delay: usize,
}

#[derive(Debug, Clone)]
struct Scenario {
    policy: MatchPolicy,
    tol: f64,
    exports: Vec<f64>,
    requests: Vec<Req>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    let policy = prop_oneof![
        Just(MatchPolicy::RegL),
        Just(MatchPolicy::RegU),
        Just(MatchPolicy::Reg),
    ];
    (
        policy,
        0.0f64..8.0,
        proptest::collection::vec(0.05f64..3.0, 10..60),
        proptest::collection::vec((0.5f64..4.0, 0usize..60, 0usize..20), 0..5),
    )
        .prop_map(|(policy, tol, gaps, raw_reqs)| {
            let mut acc = 0.0;
            let exports: Vec<f64> = gaps
                .iter()
                .map(|g| {
                    acc += *g;
                    acc
                })
                .collect();
            // Requests: strictly increasing timestamps, non-decreasing
            // arrival positions (the rep forwards them in order).
            let mut xs: Vec<f64> = raw_reqs.iter().map(|(dx, _, _)| *dx).collect();
            let mut x_acc = 0.0;
            for x in &mut xs {
                x_acc += *x;
                *x = x_acc;
            }
            let mut arrivals: Vec<usize> = raw_reqs
                .iter()
                .map(|(_, a, _)| *a % (exports.len() + 1))
                .collect();
            arrivals.sort_unstable();
            let requests = xs
                .into_iter()
                .zip(arrivals)
                .zip(raw_reqs.iter().map(|(_, _, h)| *h))
                .map(|((x, arrival), help_delay)| Req {
                    x,
                    arrival,
                    help_delay,
                })
                .collect();
            Scenario {
                policy,
                tol,
                exports,
                requests,
            }
        })
}

/// The full-knowledge matcher: the final answer for each request.
fn oracle(s: &Scenario) -> Vec<MatchResult> {
    let mut history = ExportHistory::new();
    for &e in &s.exports {
        history.record(ts(e)).unwrap();
    }
    let tol = Tolerance::new(s.tol).unwrap();
    s.requests
        .iter()
        .map(|r| evaluate(&s.policy.region(ts(r.x), tol), &history).unwrap())
        .collect()
}

#[derive(Debug, Default, PartialEq)]
struct Observed {
    /// Per request id: the timestamps transferred for it.
    sends: BTreeMap<u64, Vec<Timestamp>>,
    /// Timestamps whose memcpy was skipped.
    skipped: Vec<Timestamp>,
    memcpys: u64,
}

/// Drives one port through the scenario; with `buddy_help`, PENDING requests
/// receive the oracle's final answer after their configured delay.
fn drive(s: &Scenario, answers: &[MatchResult], buddy_help: bool) -> Observed {
    let tol = Tolerance::new(s.tol).unwrap();
    let mut port = ExportPort::new(ConnectionId(0), s.policy, tol);
    let mut obs = Observed::default();
    // (export index, request idx) at which help should be delivered.
    let mut pending_help: Vec<(usize, usize)> = Vec::new();

    let deliver_due_help = |port: &mut ExportPort,
                            obs: &mut Observed,
                            pending_help: &mut Vec<(usize, usize)>,
                            now: usize| {
        let due: Vec<(usize, usize)> = pending_help
            .iter()
            .copied()
            .filter(|(at, _)| *at <= now)
            .collect();
        pending_help.retain(|(at, _)| *at > now);
        for (_, req_idx) in due {
            let answer = match answers[req_idx] {
                MatchResult::Match(m) => RepAnswer::Match(m),
                MatchResult::NoMatch => RepAnswer::NoMatch,
                MatchResult::Pending => continue,
            };
            let fx = port
                .on_buddy_help(RequestId(req_idx as u64), answer)
                .expect("oracle-consistent buddy-help is always legal");
            if let Some(m) = fx.send {
                obs.sends.entry(req_idx as u64).or_default().push(m);
            }
        }
    };

    let mut next_req = 0usize;
    for (i, &e) in s.exports.iter().enumerate() {
        // Requests arriving before this export.
        while next_req < s.requests.len() && s.requests[next_req].arrival <= i {
            let r = &s.requests[next_req];
            let fx = port
                .on_request(RequestId(next_req as u64), ts(r.x))
                .expect("well-formed request stream");
            if let Some(m) = fx.send {
                obs.sends.entry(next_req as u64).or_default().push(m);
            }
            if buddy_help && fx.response.decided().is_none() {
                pending_help.push((i + r.help_delay, next_req));
            }
            next_req += 1;
        }
        if buddy_help {
            deliver_due_help(&mut port, &mut obs, &mut pending_help, i);
        }
        let fx = port.on_export(ts(e)).expect("well-formed export stream");
        match fx.action.expect("on_export decides") {
            couplink_proto::ExportAction::Skip => obs.skipped.push(ts(e)),
            couplink_proto::ExportAction::Buffer => obs.memcpys += 1,
            couplink_proto::ExportAction::BufferAndSend { request } => {
                obs.memcpys += 1;
                obs.sends.entry(request.0).or_default().push(ts(e));
            }
        }
        for r in &fx.resolutions {
            if let Some(m) = r.send {
                obs.sends.entry(r.request.0).or_default().push(m);
            }
        }
    }
    // Tail: requests arriving after the last export, and trailing help.
    while next_req < s.requests.len() {
        let r = &s.requests[next_req];
        let fx = port
            .on_request(RequestId(next_req as u64), ts(r.x))
            .expect("well-formed request stream");
        if let Some(m) = fx.send {
            obs.sends.entry(next_req as u64).or_default().push(m);
        }
        if buddy_help && fx.response.decided().is_none() {
            pending_help.push((usize::MAX - 1, next_req));
        }
        next_req += 1;
    }
    if buddy_help {
        deliver_due_help(&mut port, &mut obs, &mut pending_help, usize::MAX - 1);
    }
    assert_eq!(obs.memcpys, port.stats().memcpys);
    obs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The port transfers exactly the oracle's matches — once each — and
    /// never skips a timestamp that is some request's match. Buddy-help
    /// changes buffering effort, never the observable transfers.
    #[test]
    fn port_agrees_with_full_knowledge_oracle(s in scenario()) {
        let answers = oracle(&s);
        let with = drive(&s, &answers, true);
        let without = drive(&s, &answers, false);

        for (idx, ans) in answers.iter().enumerate() {
            let idx64 = idx as u64;
            match ans {
                MatchResult::Match(m) => {
                    prop_assert_eq!(
                        with.sends.get(&idx64).map(Vec::as_slice),
                        Some(&[*m][..]),
                        "with-help transfer mismatch for request {}", idx
                    );
                    prop_assert_eq!(
                        without.sends.get(&idx64).map(Vec::as_slice),
                        Some(&[*m][..]),
                        "without-help transfer mismatch for request {}", idx
                    );
                }
                MatchResult::NoMatch | MatchResult::Pending => {
                    prop_assert!(!with.sends.contains_key(&idx64));
                    prop_assert!(!without.sends.contains_key(&idx64));
                }
            }
        }
        // Soundness of skipping: no skipped timestamp is anyone's match.
        let matches: Vec<Timestamp> =
            answers.iter().filter_map(|a| a.matched()).collect();
        for skipped in with.skipped.iter().chain(without.skipped.iter()) {
            prop_assert!(!matches.contains(skipped), "skipped a match {}", skipped);
        }
        // Buddy-help can only reduce buffering.
        prop_assert!(with.memcpys <= without.memcpys);
        prop_assert!(with.skipped.len() >= without.skipped.len());
    }
}
