//! The paper's **Figure 2** topology, end to end on both runtimes: four
//! programs, three connections with three different match policies, and one
//! exported region (`P0.r1`) feeding two importers over a multi-connection
//! export. The threaded run goes through the public `couplink::Session`
//! API; the DES run drives the same validated topology on `TopologySim`;
//! the matched timestamps (and therefore the transferred data) must agree.

use couplink::prelude::*;
use couplink_proto::{ConnectionId, Trace};
use couplink_runtime::engine::Topology;
use couplink_runtime::{CostModel, ExportSchedule, ImportSchedule, TopologyConfig, TopologySim};
use std::collections::HashMap;
use std::sync::mpsc;

/// Figure 2: P0 exports r1 to both P1 (REGL) and P2 (REGU); P3 exports r2
/// to P1 (REG).
const FIG2: &str = "\
P0 c0 /bin/p0 2
P1 c0 /bin/p1 2
P2 c1 /bin/p2 1
P3 c1 /bin/p3 1
#
P0.r1 P1.r1 REGL 2.5
P0.r1 P2.r3 REGU 2.5
P3.r2 P1.r4 REG 0.5
";

const GRID: Extent2 = Extent2 { rows: 16, cols: 16 };

/// Exported cell value: encodes the timestamp and the cell position, so an
/// importer can verify exactly which exported object it received.
fn cell(region: u32, t: f64, r: usize, c: usize) -> f64 {
    region as f64 * 1e6 + t * 100.0 + (r * GRID.cols + c) as f64
}

struct Bindings {
    p0: Decomposition,
    p1: Decomposition,
    p2: Decomposition,
    p3: Decomposition,
}

fn bindings() -> Bindings {
    Bindings {
        p0: Decomposition::block_2d(GRID, 2, 1).unwrap(),
        p1: Decomposition::row_block(GRID, 2).unwrap(),
        p2: Decomposition::row_block(GRID, 1).unwrap(),
        p3: Decomposition::row_block(GRID, 1).unwrap(),
    }
}

const EXPORTS: usize = 30;

/// Runs the topology on the deterministic DES runtime and returns the
/// matched timestamp per connection (plus the trace from P0 rank 0).
fn run_des() -> (Vec<Option<Timestamp>>, Trace) {
    let config = couplink::config::parse(FIG2).unwrap();
    let b = bindings();
    let mut decomps = HashMap::new();
    decomps.insert(RegionRef::new("P0", "r1"), b.p0);
    decomps.insert(RegionRef::new("P1", "r1"), b.p1);
    decomps.insert(RegionRef::new("P2", "r3"), b.p2);
    decomps.insert(RegionRef::new("P3", "r2"), b.p3);
    decomps.insert(RegionRef::new("P1", "r4"), b.p1);
    let topology = Topology::from_config(&config, &decomps).unwrap();
    let mut sim = TopologySim::new(TopologyConfig {
        topology,
        exports: vec![
            ExportSchedule {
                program: "P0".into(),
                region: "r1".into(),
                t0: 1.6,
                dt: 1.0,
                count: EXPORTS,
                compute: vec![1e-3; 2],
            },
            ExportSchedule {
                program: "P3".into(),
                region: "r2".into(),
                t0: 1.6,
                dt: 1.0,
                count: EXPORTS,
                compute: vec![1e-3; 1],
            },
        ],
        imports: vec![
            ImportSchedule {
                program: "P1".into(),
                region: "r1".into(),
                t0: 20.0,
                dt: 20.0,
                count: 1,
                compute: 1e-2,
                startup: 1.0,
            },
            ImportSchedule {
                program: "P1".into(),
                region: "r4".into(),
                t0: 10.3,
                dt: 20.0,
                count: 1,
                compute: 1e-2,
                startup: 1.0,
            },
            ImportSchedule {
                program: "P2".into(),
                region: "r3".into(),
                t0: 20.0,
                dt: 20.0,
                count: 1,
                compute: 1e-2,
                startup: 1.0,
            },
        ],
        buddy_help: true,
        hierarchical: false,
        cost: CostModel::default(),
        buffer_capacity: None,
    })
    .unwrap();
    sim.trace("P0", 0, ConnectionId(0)).unwrap();
    let report = sim.run().unwrap();
    let matches = report
        .matches
        .iter()
        .map(|per_conn| {
            assert_eq!(per_conn.len(), 1, "one import per connection");
            per_conn[0]
        })
        .collect();
    assert_eq!(report.traces.len(), 1);
    (matches, report.traces[0].3.clone())
}

/// Runs the same topology through `Session` on the threaded runtime.
/// Returns the matched timestamp per connection (verified against the
/// actual array contents received) and the trace from P0 rank 0.
fn run_threaded() -> (Vec<Option<Timestamp>>, Trace) {
    let config = couplink::config::parse(FIG2).unwrap();
    let b = bindings();
    let mut session = SessionBuilder::new(config)
        .bind("P0", "r1", b.p0)
        .bind("P1", "r1", b.p1)
        .bind("P2", "r3", b.p2)
        .bind("P3", "r2", b.p3)
        .bind("P1", "r4", b.p1)
        .trace("P0", 0, "r1")
        .build()
        .unwrap();
    let mut p0 = session.take_program("P0").unwrap();
    let mut p1 = session.take_program("P1").unwrap();
    let mut p2 = session.take_program("P2").unwrap();
    let mut p3 = session.take_program("P3").unwrap();

    let mut threads = Vec::new();
    for rank in 0..2 {
        let mut proc = p0.take_process(rank);
        let owned = b.p0.owned(rank);
        threads.push(std::thread::spawn(move || {
            let region = proc.export_region("r1").unwrap();
            assert_eq!(region.connections(), 2, "P0.r1 feeds two importers");
            for i in 0..EXPORTS {
                let t = 1.6 + i as f64;
                let data = LocalArray::from_fn(owned, |r, c| cell(1, t, r, c));
                let outcomes = region.export(ts(t), &data).unwrap();
                assert_eq!(outcomes.len(), 2, "one outcome per connection");
            }
        }));
    }
    {
        let mut proc = p3.take_process(0);
        let owned = b.p3.owned(0);
        threads.push(std::thread::spawn(move || {
            let region = proc.export_region("r2").unwrap();
            for i in 0..EXPORTS {
                let t = 1.6 + i as f64;
                let data = LocalArray::from_fn(owned, |r, c| cell(2, t, r, c));
                region.export(ts(t), &data).unwrap();
            }
        }));
    }

    // Importers report (connection index, matched timestamp) and verify the
    // received array matches the exporter's data at that timestamp.
    let (tx, rx) = mpsc::channel::<(usize, Option<Timestamp>)>();
    for rank in 0..2 {
        let mut proc = p1.take_process(rank);
        let owned = b.p1.owned(rank);
        let tx = tx.clone();
        threads.push(std::thread::spawn(move || {
            let mut dest = LocalArray::zeros(owned);
            let m = proc
                .import_region("r1")
                .unwrap()
                .import(ts(20.0), &mut dest)
                .unwrap();
            if let Some(m) = m {
                for r in owned.row0..owned.row0 + owned.rows {
                    for c in owned.col0..owned.col0 + owned.cols {
                        assert_eq!(dest.get(r, c), cell(1, m.value(), r, c));
                    }
                }
            }
            tx.send((0, m)).unwrap();
            let mut dest = LocalArray::zeros(owned);
            let m = proc
                .import_region("r4")
                .unwrap()
                .import(ts(10.3), &mut dest)
                .unwrap();
            if let Some(m) = m {
                assert_eq!(dest.get(owned.row0, 0), cell(2, m.value(), owned.row0, 0));
            }
            tx.send((2, m)).unwrap();
        }));
    }
    {
        let mut proc = p2.take_process(0);
        let owned = b.p2.owned(0);
        let tx = tx.clone();
        threads.push(std::thread::spawn(move || {
            let mut dest = LocalArray::zeros(owned);
            let m = proc
                .import_region("r3")
                .unwrap()
                .import(ts(20.0), &mut dest)
                .unwrap();
            if let Some(m) = m {
                assert_eq!(dest.get(0, 0), cell(1, m.value(), 0, 0));
            }
            tx.send((1, m)).unwrap();
        }));
    }
    drop(tx);
    for t in threads {
        t.join().unwrap();
    }

    // All ranks of a program are answered collectively: every report for a
    // connection must carry the same match.
    let mut matches: Vec<Option<Option<Timestamp>>> = vec![None; 3];
    for (conn, m) in rx {
        match &matches[conn] {
            None => matches[conn] = Some(m),
            Some(prev) => assert_eq!(*prev, m, "ranks disagree on connection {conn}"),
        }
    }
    let matches: Vec<Option<Timestamp>> = matches.into_iter().map(|m| m.unwrap()).collect();

    let (stats, traces) = session.shutdown_with_traces().unwrap();
    assert_eq!(stats.len(), 3, "one stats vector per connection");
    assert_eq!(stats[0].len(), 2, "P0 has two exporter ranks");
    assert_eq!(stats[2].len(), 1, "P3 has one exporter rank");
    for per_rank in &stats {
        for s in per_rank {
            assert_eq!(s.requests, 1);
            assert_eq!(s.sends, 1);
        }
    }
    // Tracing a region traces each of its connections: P0.r1 feeds two.
    assert_eq!(traces.len(), 2);
    let (prog, rank, conn, trace) = &traces[0];
    assert_eq!((prog.as_str(), *rank, *conn), ("P0", 0, ConnectionId(0)));
    (matches, trace.clone())
}

#[test]
fn figure2_topology_matches_on_both_runtimes() {
    let (des, des_trace) = run_des();
    let (threaded, threaded_trace) = run_threaded();

    // The expected matches follow from the schedules alone: exports at
    // 1.6, 2.6, …, 30.6 extend past every acceptable region, so the match
    // per connection is timing-independent.
    assert_eq!(des[0], Some(ts(19.6)), "REGL [17.5, 20] matches 19.6");
    assert_eq!(des[1], Some(ts(20.6)), "REGU [20, 22.5] matches 20.6");
    assert_eq!(des[2], Some(ts(10.6)), "REG [9.8, 10.8] matches 10.6");
    assert_eq!(des, threaded, "both runtimes agree per connection");

    // Trace-sink completeness: both runtimes emitted a Figure-5 event
    // stream for P0 rank 0, and the timing-independent projections agree
    // exactly. (The full event streams legally differ: `copied` flags,
    // PENDING replies, buddy-help and remove events all depend on thread
    // timing — Property 1 only fixes requests, sends, and their order.)
    assert!(!des_trace.events().is_empty());
    assert!(!threaded_trace.events().is_empty());
    assert_eq!(
        des_trace.export_sequence(),
        threaded_trace.export_sequence(),
        "both runtimes observed the full export schedule"
    );
    assert_eq!(
        des_trace.request_sequence(),
        threaded_trace.request_sequence(),
        "both runtimes forwarded the same requests in the same order"
    );
    assert_eq!(
        des_trace.send_sequence(),
        threaded_trace.send_sequence(),
        "both runtimes sent the same objects in the same order"
    );
}
