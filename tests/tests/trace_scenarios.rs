//! Asserts the regenerated Figure 5/7/8 traces against the paper's line
//! items.

use couplink_bench::{figure5_trace, figure78_run};
use couplink_proto::{ProcResponse, RepAnswer, TraceEvent};
use couplink_time::ts;

#[test]
fn figure5_line_structure() {
    let trace = figure5_trace();
    let text = trace.render();

    // Lines 1-4: fourteen buffered exports.
    for i in 1..=14 {
        assert!(
            text.contains(&format!("export D@{}.6, call memcpy.", i)),
            "missing buffered export {i}.6"
        );
    }
    // Lines 5-7: the PENDING reply carries the latest exported timestamp
    // (the paper's triple {D@20, PENDING, D@14.6}).
    assert!(text.contains("receive request for D@20, reply {D@20, PENDING(latest @14.6)}."));
    assert!(text.contains("remove D@1.6, ..., D@14.6."));
    // Line 8: buddy-help with the final answer.
    assert!(text.contains("receive buddy-help {D@20, YES @19.6}."));
    // Lines 10-13: four skipped memcpys.
    for t in ["15.6", "16.6", "17.6", "18.6"] {
        assert!(
            text.contains(&format!("export D@{t}, skip memcpy.")),
            "missing skip at {t}"
        );
    }
    // Lines 14-16: the match is copied and sent.
    assert!(text.contains("export D@19.6, call memcpy."));
    assert!(text.contains("send D@19.6 out."));
    // Lines 17-20: inter-region exports buffer again.
    assert!(text.contains("export D@20.6, call memcpy."));
    assert!(text.contains("export D@31.6, call memcpy."));
    // Lines 21-25: second request and its buddy-help.
    assert!(text.contains("receive request for D@40, reply {D@40, PENDING(latest @31.6)}."));
    assert!(text.contains("receive buddy-help {D@40, YES @39.6}."));
    // Lines 26-29: seven skipped memcpys this time (the paper's 4 -> 7).
    for t in ["32.6", "33.6", "34.6", "35.6", "36.6", "37.6", "38.6"] {
        assert!(
            text.contains(&format!("export D@{t}, skip memcpy.")),
            "missing skip at {t}"
        );
    }
    // Lines 30-33.
    assert!(text.contains("send D@39.6 out."));
    assert!(text.contains("export D@40.6, call memcpy."));
}

#[test]
fn figure5_skips_grow_from_4_to_7() {
    let trace = figure5_trace();
    // Count skips between the two sends.
    let mut phase = 0;
    let mut skips = [0usize; 2];
    for ev in trace.events() {
        match ev {
            TraceEvent::Send { m } if *m == ts(19.6) => phase = 1,
            TraceEvent::Send { m } if *m == ts(39.6) => phase = 2,
            TraceEvent::Export { copied: false, .. } if phase < 2 => skips[phase.min(1)] += 1,
            _ => {}
        }
    }
    assert_eq!(skips, [4, 7], "the paper's growing skip counts");
}

#[test]
fn figure7_exact_event_sequence() {
    let run = figure78_run(true);
    let expected = [
        TraceEvent::Export {
            t: ts(1.6),
            copied: true,
        },
        TraceEvent::Export {
            t: ts(2.6),
            copied: true,
        },
        TraceEvent::Export {
            t: ts(3.6),
            copied: true,
        },
        TraceEvent::Request {
            x: ts(10.0),
            reply: ProcResponse::Pending {
                latest: Some(ts(3.6)),
            },
        },
        TraceEvent::Remove {
            freed: vec![ts(1.6), ts(2.6), ts(3.6)],
        },
        TraceEvent::BuddyHelp {
            x: ts(10.0),
            answer: RepAnswer::Match(ts(9.6)),
        },
        TraceEvent::Export {
            t: ts(4.6),
            copied: false,
        },
        TraceEvent::Export {
            t: ts(5.6),
            copied: false,
        },
        TraceEvent::Export {
            t: ts(6.6),
            copied: false,
        },
        TraceEvent::Export {
            t: ts(7.6),
            copied: false,
        },
        TraceEvent::Export {
            t: ts(8.6),
            copied: false,
        },
        TraceEvent::Export {
            t: ts(9.6),
            copied: true,
        },
        TraceEvent::Send { m: ts(9.6) },
        TraceEvent::Export {
            t: ts(10.6),
            copied: true,
        },
        TraceEvent::Export {
            t: ts(11.6),
            copied: true,
        },
    ];
    assert_eq!(run.trace.events(), &expected[..]);
}

#[test]
fn figure8_supersession_chain() {
    let run = figure78_run(false);
    let text = run.trace.render();
    // Line 7: D@4.6 is below the region [5.0, 10.0] and skips.
    assert!(text.contains("export D@4.6, skip memcpy."));
    // Lines 8-18: every candidate is copied and removes its predecessor.
    assert!(text.contains("export D@5.6, call memcpy."));
    for (t, prev) in [
        ("6.6", "5.6"),
        ("7.6", "6.6"),
        ("8.6", "7.6"),
        ("9.6", "8.6"),
    ] {
        assert!(text.contains(&format!("export D@{t}, call memcpy.")));
        assert!(
            text.contains(&format!("remove D@{prev}.")),
            "candidate {prev} not superseded"
        );
    }
    // Lines 19-21: the first export outside the region resolves the match.
    assert!(text.contains("export D@10.6, call memcpy."));
    assert!(text.contains("send D@9.6 out."));
}

#[test]
fn figure7_vs_figure8_memcpy_counts() {
    let with = figure78_run(true);
    let without = figure78_run(false);
    // Identical scenario, identical transfer; buddy-help converts the four
    // in-region candidate copies (Equation 1's n(i) - 1 = 4) into skips.
    assert_eq!(without.copied - with.copied, 4);
    assert_eq!(with.unnecessary_in_region, 0);
    assert_eq!(without.unnecessary_in_region, 4);
}
